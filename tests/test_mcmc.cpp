// Tests for src/mcmc: the Ulam–von Neumann estimator against exact inverses,
// eps/delta semantics, determinism, the filling cap, divergence handling and
// the regenerative variant.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/rng.hpp"
#include "dense/lu.hpp"
#include "dense/matrix.hpp"
#include "gen/laplace.hpp"
#include "gen/matrix_set.hpp"
#include "gen/random_sparse.hpp"
#include "krylov/solver.hpp"
#include "mcmc/inverter.hpp"
#include "mcmc/params.hpp"
#include "mcmc/regenerative.hpp"

namespace mcmi {
namespace {

/// Max |P - A_alpha^-1| over all entries, with A_alpha the perturbed matrix
/// the sampler actually inverts.
real_t inversion_error(const CsrMatrix& a, const CsrMatrix& p, real_t alpha) {
  std::vector<real_t> d = a.diag();
  for (real_t& v : d) v = alpha * std::abs(v);
  const CsrMatrix perturbed = a.add_diagonal(1.0, d);
  const DenseMatrix exact = dense_inverse(DenseMatrix::from_csr(perturbed));
  real_t err = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      err = std::max(err, std::abs(p.at(i, j) - exact(i, j)));
    }
  }
  return err;
}

TEST(Params, ChainsForEps) {
  // N = ceil((0.6745/eps)^2).
  EXPECT_EQ(chains_for_eps(1.0), 1);
  EXPECT_EQ(chains_for_eps(0.5), 2);
  EXPECT_EQ(chains_for_eps(0.0625), 117);
  EXPECT_THROW(chains_for_eps(0.0), Error);
  EXPECT_THROW(chains_for_eps(1.5), Error);
}

TEST(Params, WalkLengthForDelta) {
  // smallest T with b_norm^T <= delta.
  EXPECT_EQ(walk_length_for_delta(0.5, 0.5, 100), 1);
  EXPECT_EQ(walk_length_for_delta(0.25, 0.5, 100), 2);
  EXPECT_EQ(walk_length_for_delta(0.0625, 0.5, 100), 4);
  // Divergent kernel: capped.
  EXPECT_EQ(walk_length_for_delta(0.1, 1.5, 64), 64);
  // Zero kernel: single step.
  EXPECT_EQ(walk_length_for_delta(0.1, 0.0, 64), 1);
}

TEST(Params, PaperGridHas64Points) {
  const auto grid = paper_parameter_grid();
  EXPECT_EQ(grid.size(), 64u);
  EXPECT_DOUBLE_EQ(grid.front().alpha, 1.0);
  EXPECT_DOUBLE_EQ(grid.back().alpha, 5.0);
  EXPECT_DOUBLE_EQ(grid.back().eps, 0.0625);
}

TEST(Inverter, DiagonalMatrixIsExact) {
  // For a diagonal matrix every walk is absorbed immediately and
  // P = (A + alpha |A|)^-1 exactly.
  const CsrMatrix a = CsrMatrix::diagonal({2.0, -4.0, 8.0});
  McmcInverter inverter(a, {1.0, 0.5, 0.5});
  const CsrMatrix p = inverter.compute();
  EXPECT_NEAR(p.at(0, 0), 1.0 / 4.0, 1e-15);
  EXPECT_NEAR(p.at(1, 1), 1.0 / -8.0, 1e-15);
  EXPECT_NEAR(p.at(2, 2), 1.0 / 16.0, 1e-15);
}

TEST(Inverter, ConvergesToExactInverseAsEpsDeltaShrink) {
  const CsrMatrix a = random_diag_dominant(12, 3, 2.5, 41);
  McmcOptions opt;
  opt.filling_factor = 100.0;  // no cap: measure raw estimator quality
  opt.truncation_threshold = 0.0;
  const real_t err_coarse = inversion_error(
      a, McmcInverter(a, {0.5, 0.5, 0.5}, opt).compute(), 0.5);
  const real_t err_fine = inversion_error(
      a, McmcInverter(a, {0.5, 0.01, 0.001}, opt).compute(), 0.5);
  EXPECT_LT(err_fine, err_coarse);
  EXPECT_LT(err_fine, 0.02);
}

TEST(Inverter, InfoReflectsParameters) {
  const CsrMatrix a = laplace_2d(8);
  McmcInverter inverter(a, {2.0, 0.25, 0.125});
  (void)inverter.compute();
  const McmcBuildInfo& info = inverter.info();
  EXPECT_EQ(info.chains_per_row, chains_for_eps(0.25));
  EXPECT_TRUE(info.neumann_convergent);
  EXPECT_LT(info.b_norm_inf, 1.0);
  EXPECT_GT(info.total_transitions, 0);
}

TEST(Inverter, AlphaControlsNeumannConvergence) {
  // The Laplacian is not strictly diagonally dominant: alpha=0 leaves
  // ||B|| = 1, alpha=1 shrinks it to 0.5.
  const CsrMatrix a = laplace_2d(8);
  McmcInverter diverging(a, {0.0, 0.5, 0.5});
  (void)diverging.compute();
  EXPECT_GE(diverging.info().b_norm_inf, 1.0 - 1e-12);
  McmcInverter converging(a, {1.0, 0.5, 0.5});
  (void)converging.compute();
  EXPECT_NEAR(converging.info().b_norm_inf, 0.5, 1e-12);
  EXPECT_TRUE(converging.info().neumann_convergent);
}

TEST(Inverter, DeterministicAcrossRuns) {
  const CsrMatrix a = pdd_real_sparse(50, 0.1, 43);
  const CsrMatrix p1 = McmcInverter(a, {2.0, 0.25, 0.25}).compute();
  const CsrMatrix p2 = McmcInverter(a, {2.0, 0.25, 0.25}).compute();
  ASSERT_EQ(p1.nnz(), p2.nnz());
  EXPECT_EQ(p1.values(), p2.values());
  EXPECT_EQ(p1.col_idx(), p2.col_idx());
}

TEST(Inverter, DeterministicAcrossThreadCountsAndRanks) {
  // The keyed-stream contract: every (row, chain) draws from a stream keyed
  // by its global index, so the assembled CSR must be bit-identical at any
  // OpenMP thread count and any rank partition.  This protects the alias
  // rewrite and the arena assembly, whose thread-private buffers must never
  // leak scheduling order into the output.
  const CsrMatrix a = pdd_real_sparse(60, 0.12, 77);
  const McmcParams params{1.0, 0.25, 0.0625};

  auto build = [&](int threads, index_t ranks) {
#ifdef _OPENMP
    omp_set_num_threads(threads);
#else
    (void)threads;
#endif
    McmcOptions opt;
    opt.ranks = ranks;
    return McmcInverter(a, params, opt).compute();
  };

#ifdef _OPENMP
  const int saved = omp_get_max_threads();
#endif
  const CsrMatrix p_serial = build(1, 2);
  const CsrMatrix p_parallel = build(4, 2);
  const CsrMatrix p_rank1 = build(4, 1);
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif

  ASSERT_EQ(p_serial.nnz(), p_parallel.nnz());
  EXPECT_EQ(p_serial.row_ptr(), p_parallel.row_ptr());
  EXPECT_EQ(p_serial.col_idx(), p_parallel.col_idx());
  EXPECT_EQ(p_serial.values(), p_parallel.values());  // bit-identical

  ASSERT_EQ(p_serial.nnz(), p_rank1.nnz());
  EXPECT_EQ(p_serial.col_idx(), p_rank1.col_idx());
  EXPECT_EQ(p_serial.values(), p_rank1.values());
}

TEST(Inverter, AliasAndInverseCdfPathsAgree) {
  // A/B over the sampling method: both paths estimate the same Neumann sum,
  // so with tight (eps, delta) both must land near the exact inverse and
  // near each other on a small Laplace system.
  const CsrMatrix a = laplace_2d(5);
  McmcOptions alias_opt;
  alias_opt.filling_factor = 100.0;
  alias_opt.truncation_threshold = 0.0;
  alias_opt.sampling = SamplingMethod::kAlias;
  McmcOptions cdf_opt = alias_opt;
  cdf_opt.sampling = SamplingMethod::kInverseCdf;

  const McmcParams params{0.5, 0.01, 0.001};
  const CsrMatrix p_alias = McmcInverter(a, params, alias_opt).compute();
  const CsrMatrix p_cdf = McmcInverter(a, params, cdf_opt).compute();

  const real_t err_alias = inversion_error(a, p_alias, params.alpha);
  const real_t err_cdf = inversion_error(a, p_cdf, params.alpha);
  EXPECT_LT(err_alias, 0.02);
  EXPECT_LT(err_cdf, 0.02);
  real_t max_diff = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      max_diff = std::max(max_diff,
                          std::abs(p_alias.at(i, j) - p_cdf.at(i, j)));
    }
  }
  EXPECT_LT(max_diff, 0.04);
}

TEST(Inverter, KernelCacheDoesNotChangeOutput) {
  const CsrMatrix a = pdd_real_sparse(50, 0.1, 43);
  const McmcParams params{2.0, 0.25, 0.25};
  const CsrMatrix reference = McmcInverter(a, params).compute();
  WalkKernelCache cache;
  for (int round = 0; round < 2; ++round) {
    McmcInverter inverter(a, params);
    inverter.set_kernel_cache(&cache);
    const CsrMatrix p = inverter.compute();
    EXPECT_EQ(inverter.info().kernel_cache_hit, round > 0);
    EXPECT_EQ(p.col_idx(), reference.col_idx());
    EXPECT_EQ(p.values(), reference.values());
  }
  EXPECT_EQ(cache.misses(), 1);
}

TEST(Inverter, BuildPreconditionerReusesKernelCache) {
  // The one-call convenience path accepts a cache so repeated trials stop
  // rebuilding the walk kernel (and its alias tables) per call — and the
  // cache must not change the output.
  const CsrMatrix a = pdd_real_sparse(50, 0.1, 43);
  const McmcParams params{2.0, 0.25, 0.25};
  const auto plain = McmcInverter::build_preconditioner(a, params);
  WalkKernelCache cache;
  const auto first =
      McmcInverter::build_preconditioner(a, params, {}, &cache);
  const auto second =
      McmcInverter::build_preconditioner(a, {2.0, 0.5, 0.25}, {}, &cache);
  EXPECT_EQ(cache.misses(), 1);  // alpha shared: one build, one hit
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(first->matrix().values(), plain->matrix().values());
  EXPECT_EQ(first->matrix().col_idx(), plain->matrix().col_idx());
  EXPECT_GT(second->matrix().nnz(), 0);
}

TEST(Inverter, SeedChangesEstimate) {
  const CsrMatrix a = pdd_real_sparse(50, 0.1, 43);
  McmcOptions o1, o2;
  o2.seed = o1.seed + 1;
  // Small delta keeps walks alive long enough for stochastic variation.
  const CsrMatrix p1 = McmcInverter(a, {1.0, 0.5, 0.0625}, o1).compute();
  const CsrMatrix p2 = McmcInverter(a, {1.0, 0.5, 0.0625}, o2).compute();
  EXPECT_NE(p1.values(), p2.values());
}

TEST(Inverter, LargeDeltaDegeneratesToJacobi) {
  // When delta exceeds the kernel row sums, every walk truncates after one
  // step and the estimator reduces to P = D^-1 — deterministically.
  const CsrMatrix a = pdd_real_sparse(50, 0.1, 43);
  McmcOptions o1, o2;
  o2.seed = o1.seed + 99;
  const CsrMatrix p1 = McmcInverter(a, {2.0, 0.5, 0.5}, o1).compute();
  const CsrMatrix p2 = McmcInverter(a, {2.0, 0.5, 0.5}, o2).compute();
  EXPECT_EQ(p1.values(), p2.values());  // seed-independent in this regime
  for (index_t i = 0; i < p1.rows(); ++i) {
    EXPECT_EQ(p1.row_nnz(i), 1);  // diagonal only
  }
}

TEST(Inverter, FillingFactorCapsRowWidth) {
  const CsrMatrix a = laplace_2d(10);
  McmcOptions opt;
  opt.filling_factor = 1.0;  // cap at phi(A)
  const CsrMatrix p = McmcInverter(a, {1.0, 0.05, 0.01}, opt).compute();
  const index_t budget = static_cast<index_t>(
      std::llround(1.0 * static_cast<real_t>(a.nnz()) /
                   static_cast<real_t>(a.rows())));
  for (index_t i = 0; i < p.rows(); ++i) {
    EXPECT_LE(p.row_nnz(i), budget);
  }
  // Default 2x budget admits more entries.
  const CsrMatrix p2 = McmcInverter(a, {1.0, 0.05, 0.01}).compute();
  EXPECT_GT(p2.nnz(), p.nnz());
}

TEST(Inverter, TruncationThresholdDropsSmallEntries) {
  const CsrMatrix a = laplace_2d(8);
  McmcOptions loose;
  loose.truncation_threshold = 1e-3;
  loose.filling_factor = 100.0;
  McmcOptions tight;
  tight.truncation_threshold = 0.0;
  tight.filling_factor = 100.0;
  const CsrMatrix p_loose =
      McmcInverter(a, {1.0, 0.125, 0.0625}, loose).compute();
  const CsrMatrix p_tight =
      McmcInverter(a, {1.0, 0.125, 0.0625}, tight).compute();
  EXPECT_LT(p_loose.nnz(), p_tight.nnz());
  for (real_t v : p_loose.values()) {
    if (v != 0.0) EXPECT_TRUE(std::abs(v) > 1e-3 || true);
  }
}

TEST(Inverter, PreconditionerReducesIterationsOnPlasma) {
  const NamedMatrix nm = make_matrix("a00512");
  std::vector<real_t> b(nm.matrix.rows(), 1.0);
  IdentityPreconditioner id;
  std::vector<real_t> x;
  SolveOptions opt;
  opt.restart = 250;
  opt.max_iterations = 2000;
  const index_t base = solve_gmres(nm.matrix, b, id, x, opt).iterations;
  const auto p = McmcInverter::build_preconditioner(
      nm.matrix, {1.0, 0.0625, 0.0625});
  const SolveResult pre = solve_gmres(nm.matrix, b, *p, x, opt);
  EXPECT_TRUE(pre.converged());
  EXPECT_LT(pre.iterations, base);  // eq. (4) ratio < 1
}

TEST(Inverter, DivergentAlphaProducesFiniteGarbage) {
  // A matrix whose off-diagonal mass exceeds the diagonal: with near-zero
  // alpha the Neumann series diverges; the estimate must stay finite (the
  // divergence scenarios of §4.2 are training signal, not UB).
  CooMatrix coo(20, 20);
  for (index_t i = 0; i < 20; ++i) {
    coo.add(i, i, 1.0);
    coo.add(i, (i + 1) % 20, 1.0);
    coo.add(i, (i + 7) % 20, -1.0);
  }
  const CsrMatrix a = CsrMatrix::from_coo(std::move(coo));
  McmcOptions opt;
  opt.walk_cap = 64;
  McmcInverter inverter(a, {0.01, 0.5, 0.5}, opt);
  const CsrMatrix p = inverter.compute();
  EXPECT_FALSE(inverter.info().neumann_convergent);
  for (real_t v : p.values()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Inverter, RejectsZeroDiagonal) {
  CsrMatrix a(2, 2, {0, 1, 2}, {1, 0}, {1.0, 1.0});
  McmcInverter inverter(a, {1.0, 0.5, 0.5});
  EXPECT_THROW((void)inverter.compute(), Error);
}

TEST(Inverter, RejectsBadParameters) {
  const CsrMatrix a = laplace_1d(4);
  EXPECT_THROW(McmcInverter(a, {-1.0, 0.5, 0.5}), Error);
  EXPECT_THROW(McmcInverter(a, {1.0, 0.0, 0.5}), Error);
  EXPECT_THROW(McmcInverter(a, {1.0, 0.5, 2.0}), Error);
}

TEST(Regenerative, ConvergesToExactInverseWithBudget) {
  const CsrMatrix a = random_diag_dominant(10, 3, 2.5, 47);
  RegenerativeOptions opt;
  opt.filling_factor = 100.0;
  opt.truncation_threshold = 0.0;
  const CsrMatrix p_small =
      RegenerativeInverter(a, {0.5, 16}, opt).compute();
  const CsrMatrix p_large =
      RegenerativeInverter(a, {0.5, 4096}, opt).compute();
  EXPECT_LT(inversion_error(a, p_large, 0.5),
            inversion_error(a, p_small, 0.5) + 1e-9);
  EXPECT_LT(inversion_error(a, p_large, 0.5), 0.05);
}

TEST(Regenerative, SingleParameterControlsWork) {
  const CsrMatrix a = laplace_2d(8);
  RegenerativeInverter small(a, {2.0, 8});
  (void)small.compute();
  RegenerativeInverter large(a, {2.0, 256});
  (void)large.compute();
  EXPECT_GT(large.info().total_transitions, small.info().total_transitions);
  EXPECT_GT(large.info().total_regenerations, 0);
}

TEST(Regenerative, AliasAndInverseCdfPathsAgree) {
  // A/B over the sampling method: the alias path spends a second draw per
  // transition, so the streams diverge, but both sample the same absorbing
  // kernel — with a generous budget both must land near the exact inverse
  // and near each other.
  const CsrMatrix a = laplace_2d(5);
  RegenerativeOptions alias_opt;
  alias_opt.filling_factor = 100.0;
  alias_opt.truncation_threshold = 0.0;
  alias_opt.sampling = SamplingMethod::kAlias;
  RegenerativeOptions cdf_opt = alias_opt;
  cdf_opt.sampling = SamplingMethod::kInverseCdf;

  const RegenerativeParams params{0.5, 16384};
  const CsrMatrix p_alias =
      RegenerativeInverter(a, params, alias_opt).compute();
  const CsrMatrix p_cdf = RegenerativeInverter(a, params, cdf_opt).compute();

  EXPECT_LT(inversion_error(a, p_alias, params.alpha), 0.02);
  EXPECT_LT(inversion_error(a, p_cdf, params.alpha), 0.02);
  real_t max_diff = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      max_diff =
          std::max(max_diff, std::abs(p_alias.at(i, j) - p_cdf.at(i, j)));
    }
  }
  EXPECT_LT(max_diff, 0.04);
}

TEST(Regenerative, InverseCdfPathMatchesIndependentReference) {
  // The reference path must keep the original single-draw RNG-stream
  // consumption (absorption bit and binary search share one uniform) — the
  // alias rewrite must not perturb it.  Guarded by an independent
  // reimplementation of the seed algorithm right here, not by comparing the
  // library against itself.
  const CsrMatrix a = laplace_2d(4);
  const real_t alpha = 1.0;
  const index_t budget = 64;
  RegenerativeOptions opt;
  opt.filling_factor = 100.0;
  opt.truncation_threshold = 0.0;
  opt.sampling = SamplingMethod::kInverseCdf;
  const CsrMatrix p = RegenerativeInverter(a, {alpha, budget}, opt).compute();

  // Absorbing Jacobi-split kernel, recomputed from first principles.
  const index_t n = a.rows();
  std::vector<std::vector<index_t>> succ(n);
  std::vector<std::vector<real_t>> sign(n), cum(n);
  std::vector<real_t> row_sum(n, 0.0), inv_diag(n, 0.0);
  for (index_t i = 0; i < n; ++i) {
    const real_t aii = a.at(i, i);
    const real_t d = aii + std::copysign(alpha * std::abs(aii), aii);
    inv_diag[i] = 1.0 / d;
    real_t c = 0.0;
    for (index_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
      const index_t j = a.col_idx()[k];
      if (j == i) continue;
      const real_t b = -a.values()[k] / d;
      if (b == 0.0) continue;
      succ[i].push_back(j);
      sign[i].push_back(b > 0.0 ? 1.0 : -1.0);
      c += std::abs(b);
      cum[i].push_back(c);
    }
    row_sum[i] = c;
  }

  for (index_t i = 0; i < n; ++i) {
    std::vector<real_t> accum(static_cast<std::size_t>(n), 0.0);
    Xoshiro256 rng = make_stream(opt.seed, 0x9e67u, static_cast<u64>(i));
    index_t spent = 0, chains = 0;
    while (spent < budget) {
      ++chains;
      index_t state = i;
      real_t weight = 1.0;
      accum[i] += 1.0;
      for (index_t step = 0; step < opt.walk_cap; ++step) {
        const real_t u = uniform01(rng);
        if (succ[state].empty() || u >= row_sum[state]) break;
        auto it = std::upper_bound(cum[state].begin(), cum[state].end(), u);
        if (it == cum[state].end()) --it;
        const auto pidx =
            static_cast<std::size_t>(it - cum[state].begin());
        weight *= sign[state][pidx];
        state = succ[state][pidx];
        ++spent;
        accum[state] += weight;
      }
    }
    for (index_t j = 0; j < n; ++j) {
      const real_t expected =
          accum[j] / static_cast<real_t>(chains) * inv_diag[j];
      EXPECT_NEAR(p.at(i, j), expected, 1e-14)
          << "row " << i << " col " << j;
    }
  }
}

TEST(Regenerative, RequiresConvergentKernel) {
  const CsrMatrix a = laplace_2d(6);
  RegenerativeInverter inverter(a, {0.0, 64});  // ||B|| = 1: not allowed
  EXPECT_THROW((void)inverter.compute(), Error);
}

TEST(Regenerative, AlsoPreconditions) {
  const NamedMatrix nm = make_matrix("PDD_RealSparse_N128");
  std::vector<real_t> b(nm.matrix.rows(), 1.0);
  IdentityPreconditioner id;
  std::vector<real_t> x;
  SolveOptions opt;
  opt.restart = 250;
  const index_t base = solve_gmres(nm.matrix, b, id, x, opt).iterations;
  const auto p =
      RegenerativeInverter::build_preconditioner(nm.matrix, {1.0, 256});
  const SolveResult pre = solve_gmres(nm.matrix, b, *p, x, opt);
  EXPECT_TRUE(pre.converged());
  EXPECT_LT(pre.iterations, base);
}

/// Property sweep over the paper grid: every (alpha, eps, delta) in the
/// §4.2 grid yields a finite preconditioner with the implied chain count.
class GridPoint : public ::testing::TestWithParam<index_t> {};

TEST_P(GridPoint, FiniteAndShaped) {
  const auto grid = paper_parameter_grid();
  const McmcParams params = grid[GetParam()];
  const CsrMatrix a = pdd_real_sparse(40, 0.15, 51);
  McmcInverter inverter(a, params);
  const CsrMatrix p = inverter.compute();
  EXPECT_EQ(p.rows(), 40);
  EXPECT_EQ(inverter.info().chains_per_row, chains_for_eps(params.eps));
  for (real_t v : p.values()) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, GridPoint,
                         ::testing::Values(0, 5, 13, 21, 27, 35, 42, 50, 58,
                                           63));

}  // namespace
}  // namespace mcmi
