// Serving-layer tests: the content-addressed ArtifactStore (keying,
// collision handling, LRU+byte eviction, warm swap) and the SolveService
// (admission, priorities, coalesced builds, warm-path bit-identity,
// cross-thread cancellation, clean shutdown).  Everything runs on small
// gen/ matrices so the suite stays fast under the sanitizer job.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "gen/laplace.hpp"
#include "gen/plasma.hpp"
#include "mcmc/inverter.hpp"
#include "serve/artifact_store.hpp"
#include "serve/solve_service.hpp"
#include "solve/fault_injection.hpp"
#include "solve/orchestrator.hpp"
#include "sparse/csr.hpp"

namespace mcmi::serve {
namespace {

std::vector<real_t> random_rhs(index_t n, u64 seed) {
  Xoshiro256 rng = make_stream(seed);
  std::vector<real_t> b(static_cast<std::size_t>(n));
  for (real_t& v : b) v = normal01(rng);
  return b;
}

/// Cheap but Neumann-convergent MCMC parameters for small Laplacians.
McmcParams fast_params() { return {1.0, 0.25, 0.125}; }

ServiceOptions fast_service_options() {
  ServiceOptions opts;
  opts.workers = 2;
  opts.mcmc_params = fast_params();
  return opts;
}

// ---------------------------------------------------------------------------
// Fingerprinting.

TEST(ContentFingerprint, DistinctMatricesGetDistinctFingerprints) {
  const CsrMatrix a = laplace_2d(8);
  const CsrMatrix b = laplace_2d(9);
  const CsrMatrix c = plasma_a00512();
  EXPECT_NE(a.content_fingerprint(), b.content_fingerprint());
  EXPECT_NE(a.content_fingerprint(), c.content_fingerprint());
  EXPECT_NE(b.content_fingerprint(), c.content_fingerprint());
}

TEST(ContentFingerprint, SingleValueBitFlipChangesFingerprint) {
  CsrMatrix a = laplace_2d(8);
  const u64 before = a.content_fingerprint();
  a.values()[3] = std::nextafter(a.values()[3], 1e30);
  EXPECT_NE(before, a.content_fingerprint());
}

TEST(ContentFingerprint, CopiesShareFingerprintAndContent) {
  const CsrMatrix a = laplace_2d(8);
  const CsrMatrix b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(a.content_fingerprint(), b.content_fingerprint());
  EXPECT_TRUE(a.same_content(b));
  EXPECT_FALSE(a.same_content(laplace_2d(9)));
}

// ---------------------------------------------------------------------------
// ArtifactStore.

TEST(ArtifactStore, InternIsFindOrCreate) {
  ArtifactStore store;
  const CsrMatrix a = laplace_2d(8);
  auto first = store.intern(a);
  auto second = store.intern(a);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first, second);
  EXPECT_EQ(store.size(), 1u);
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.misses, 1u);  // the creating intern
  EXPECT_EQ(stats.hits, 1u);    // the second intern
}

TEST(ArtifactStore, EvictsLeastRecentlyUsedByEntryCount) {
  StoreLimits limits;
  limits.max_entries = 2;
  ArtifactStore store{limits};
  const CsrMatrix a = laplace_2d(6);
  const CsrMatrix b = laplace_2d(7);
  const CsrMatrix c = laplace_2d(8);
  const u64 fa = a.content_fingerprint();
  const u64 fb = b.content_fingerprint();
  const u64 fc = c.content_fingerprint();

  auto ea = store.intern(a);
  (void)store.intern(b);
  (void)store.intern(a);  // touch a: b becomes the LRU victim
  (void)store.intern(c);  // evicts b

  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.contains(fa));
  EXPECT_FALSE(store.contains(fb));
  EXPECT_TRUE(store.contains(fc));
  EXPECT_EQ(store.stats().evictions, 1u);
  // MRU-first order: c was inserted last, a was touched before it.
  const std::vector<u64> order = store.lru_fingerprints();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], fc);
  EXPECT_EQ(order[1], fa);
  // The evicted entry's shared_ptr keeps working for existing holders.
  EXPECT_TRUE(ea->matrix()->same_content(a));
}

TEST(ArtifactStore, EvictsByByteBudget) {
  StoreLimits limits;
  limits.max_bytes = 1;  // nothing fits next to anything else
  ArtifactStore store{limits};
  (void)store.intern(laplace_2d(6));
  (void)store.intern(laplace_2d(7));
  // The newest entry always stays (the budget never evicts down to zero).
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_TRUE(store.contains(laplace_2d(7).content_fingerprint()));
}

TEST(ArtifactStore, FingerprintCollisionIsDetectedNotServed) {
  ArtifactStore store;
  const CsrMatrix a = laplace_2d(6);
  const CsrMatrix b = laplace_2d(7);
  const u64 fa = a.content_fingerprint();
  (void)store.intern(a);

  // Force the collision through the keyed lookup: ask for b under a's
  // fingerprint, as if the 64-bit hash had collided.
  auto hit = store.find(fa, b);
  EXPECT_EQ(hit, nullptr);
  EXPECT_EQ(store.stats().collisions, 1u);
  // The honest entry is untouched and still served.
  EXPECT_NE(store.find(fa, a), nullptr);
}

TEST(ArtifactStore, SwapInPublishesTunedPreconditioner) {
  ArtifactStore store;
  const CsrMatrix a = laplace_2d(6);
  auto entry = store.intern(a);
  EXPECT_EQ(entry->state(), BuildState::kCold);
  EXPECT_EQ(entry->tuned(), nullptr);

  ASSERT_TRUE(entry->try_begin_build());
  EXPECT_FALSE(entry->try_begin_build());  // slot claimed exactly once
  EXPECT_EQ(entry->state(), BuildState::kBuilding);

  McmcInverter inverter(a, fast_params());
  auto tuned = std::make_shared<SparseApproximateInverse>(inverter.compute(),
                                                          "mcmc");
  const std::size_t cold_bytes = store.bytes();
  store.swap_in(entry, tuned, fast_params());

  EXPECT_EQ(entry->state(), BuildState::kTuned);
  EXPECT_EQ(entry->tuned(), tuned);
  EXPECT_EQ(entry->tuned_params().alpha, fast_params().alpha);
  EXPECT_EQ(store.stats().swaps, 1u);
  EXPECT_GT(store.bytes(), cold_bytes);  // tuned P now accounted
}

TEST(ArtifactStore, FailedBuildRetiresPermanently) {
  ArtifactStore store;
  auto entry = store.intern(laplace_2d(6));
  ASSERT_TRUE(entry->try_begin_build());
  entry->mark_build_failed();
  EXPECT_EQ(entry->state(), BuildState::kFailed);
  EXPECT_FALSE(entry->try_begin_build());  // nobody retries
}

TEST(ArtifactStore, TransientFailureOpensBreakerIntoRetryWait) {
  ArtifactStore store;
  auto entry = store.intern(laplace_2d(6));
  ASSERT_TRUE(entry->try_begin_build());
  entry->mark_build_failed(BuildStatus::kDeadlineExceeded,
                           /*max_attempts=*/3, /*cooldown_seconds=*/0.0);
  EXPECT_EQ(entry->state(), BuildState::kRetryWait);
  EXPECT_EQ(entry->failure_cause(), BuildStatus::kDeadlineExceeded);
  EXPECT_EQ(entry->build_failures(), 1);
  EXPECT_TRUE(entry->retry_ready());  // zero cooldown: probe available now
}

TEST(ArtifactStore, CancelledProbeReturnsToRetryWaitNotWedged) {
  ArtifactStore store;
  auto entry = store.intern(laplace_2d(6));
  ASSERT_TRUE(entry->try_begin_build());
  entry->mark_build_failed(BuildStatus::kInjectedFault, 3, 0.0);
  ASSERT_EQ(entry->state(), BuildState::kRetryWait);

  // The half-open probe claims the slot...
  ASSERT_TRUE(entry->try_begin_build());
  EXPECT_EQ(entry->state(), BuildState::kBuilding);
  // ...and is cancelled mid-flight: the breaker re-opens (kRetryWait),
  // it does not wedge in kBuilding or retire early.
  entry->mark_build_failed(BuildStatus::kCancelled, 3, 0.0);
  EXPECT_EQ(entry->state(), BuildState::kRetryWait);
  EXPECT_EQ(entry->build_failures(), 2);

  // The attempt budget is bounded: the third transient failure retires.
  ASSERT_TRUE(entry->try_begin_build());
  entry->mark_build_failed(BuildStatus::kCancelled, 3, 0.0);
  EXPECT_EQ(entry->state(), BuildState::kFailed);
  EXPECT_FALSE(entry->try_begin_build());
}

TEST(ArtifactStore, PermanentCauseRetiresEvenWithAttemptsLeft) {
  ArtifactStore store;
  auto entry = store.intern(laplace_2d(6));
  ASSERT_TRUE(entry->try_begin_build());
  entry->mark_build_failed(BuildStatus::kDivergentKernel, 5, 0.0);
  EXPECT_EQ(entry->state(), BuildState::kFailed);
}

TEST(ArtifactStore, CooldownGatesTheProbe) {
  ArtifactStore store;
  auto entry = store.intern(laplace_2d(6));
  ASSERT_TRUE(entry->try_begin_build());
  entry->mark_build_failed(BuildStatus::kDeadlineExceeded, 3,
                           /*cooldown_seconds=*/30.0);
  ASSERT_EQ(entry->state(), BuildState::kRetryWait);
  EXPECT_FALSE(entry->retry_ready());
  EXPECT_GT(entry->cooldown_remaining_seconds(), 0.0);
  EXPECT_FALSE(entry->try_begin_build());  // breaker still open
}

TEST(ArtifactStore, InjectedBytePressureForcesEviction) {
  StoreLimits limits;
  limits.max_bytes = 1u << 20;
  ArtifactStore store{limits};
  FaultInjector faults;
  store.set_fault_injector(&faults);
  (void)store.intern(laplace_2d(6));
  (void)store.intern(laplace_2d(7));
  ASSERT_EQ(store.size(), 2u);

  // A pressure spike larger than the budget squeezes the store down to
  // its newest entry on the next budget check.
  faults.set_store_pressure_bytes(limits.max_bytes);
  (void)store.intern(laplace_2d(8));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.contains(laplace_2d(8).content_fingerprint()));
  EXPECT_GE(store.stats().pressure_evictions, 1u);

  // Pressure released: the store refills normally.
  faults.set_store_pressure_bytes(0);
  (void)store.intern(laplace_2d(6));
  EXPECT_EQ(store.size(), 2u);
}

// ---------------------------------------------------------------------------
// SolveService.

TEST(SolveService, ServesConcurrentRequestsAcrossFingerprints) {
  SolveService service(fast_service_options());
  const std::vector<CsrMatrix> mats = {laplace_2d(6), laplace_2d(8),
                                       laplace_2d(10)};
  std::vector<ServeHandle> handles;
  for (int i = 0; i < 12; ++i) {
    const CsrMatrix& a = mats[static_cast<std::size_t>(i) % mats.size()];
    handles.push_back(
        service.submit(a, random_rhs(a.rows(), static_cast<u64>(i))));
    ASSERT_TRUE(handles.back());
  }
  for (const ServeHandle& h : handles) {
    const ServeResult& r = h.wait();
    EXPECT_TRUE(r.report.converged()) << r.report.summary();
    EXPECT_TRUE(r.solve_ran);
  }
  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 12u);
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_EQ(stats.warm_requests + stats.cold_requests, 12u);
  // One matrix -> at most one build, ever.
  EXPECT_LE(stats.builds_started, 3u);
}

TEST(SolveService, CoalescesConcurrentBuildsToExactlyOne) {
  ServiceOptions opts = fast_service_options();
  opts.workers = 4;  // real concurrency against one fingerprint
  SolveService service(opts);
  const CsrMatrix a = laplace_2d(8);

  std::vector<ServeHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(
        service.submit(a, random_rhs(a.rows(), static_cast<u64>(i))));
    ASSERT_TRUE(handles.back());
  }
  for (const ServeHandle& h : handles) {
    EXPECT_TRUE(h.wait().report.converged());
  }
  service.drain();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.builds_started, 1u);    // K requests, exactly 1 build
  EXPECT_EQ(stats.builds_completed, 1u);
  EXPECT_EQ(stats.builds_failed, 0u);
  EXPECT_EQ(service.store().stats().swaps, 1u);
}

TEST(SolveService, WarmPathMatchesColdBuildBitIdentically) {
  const CsrMatrix a = laplace_2d(8);
  const std::vector<real_t> b = random_rhs(a.rows(), 7);

  // Reference: a standalone inline build + solve with the same params.
  McmcInverter inverter(a, fast_params());
  const CsrMatrix p_ref = inverter.compute();
  std::vector<real_t> x_ref;
  {
    SolveOrchestrator orch(a);
    SolveRequest req;
    req.mcmc_params = fast_params();
    x_ref.assign(static_cast<std::size_t>(a.rows()), 0.0);
    const SolveReport rep = orch.solve(b, x_ref, req);
    ASSERT_TRUE(rep.converged());
    ASSERT_EQ(rep.served_by, SolveStage::kMcmc);
  }

  // Service: let the background build finish, then solve warm.
  SolveService service(fast_service_options());
  ServeHandle cold = service.submit(a, b);  // schedules the build
  (void)cold.wait();
  service.drain();  // build + swap_in completed
  ASSERT_EQ(service.stats().builds_completed, 1u);

  auto entry = service.store().find(a);
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->state(), BuildState::kTuned);
  // The swapped-in P is bit-identical to the inline build...
  EXPECT_TRUE(entry->tuned()->matrix().same_content(p_ref));

  // ...and the warm solve is bit-identical to the inline solve.  The
  // handle must outlive the result reference it hands out.
  ServeHandle warm_handle = service.submit(a, b);
  const ServeResult& warm = warm_handle.wait();
  ASSERT_TRUE(warm.warm);
  ASSERT_TRUE(warm.report.converged());
  EXPECT_EQ(warm.report.served_by, SolveStage::kMcmc);
  ASSERT_EQ(warm.x.size(), x_ref.size());
  for (std::size_t i = 0; i < x_ref.size(); ++i) {
    EXPECT_EQ(warm.x[i], x_ref[i]) << "component " << i;
  }
}

TEST(SolveService, CancelsQueuedJobFromAnotherThread) {
  ServiceOptions opts = fast_service_options();
  opts.workers = 1;
  opts.start_paused = true;
  SolveService service(opts);
  const CsrMatrix a = laplace_2d(6);

  ServeHandle keep = service.submit(a, random_rhs(a.rows(), 1));
  ServeHandle victim = service.submit(a, random_rhs(a.rows(), 2));
  ASSERT_TRUE(keep);
  ASSERT_TRUE(victim);
  ASSERT_FALSE(victim.done());

  std::thread canceller([&] { victim.cancel(); });
  canceller.join();
  service.resume();

  const ServeResult& cancelled = victim.wait();
  EXPECT_EQ(cancelled.report.status, SolveStatus::kCancelled);
  EXPECT_FALSE(cancelled.solve_ran);
  EXPECT_TRUE(keep.wait().report.converged());
  service.drain();
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(SolveService, RejectsWhenQueueIsFull) {
  ServiceOptions opts = fast_service_options();
  opts.workers = 1;
  opts.queue_capacity = 2;
  opts.start_paused = true;  // nothing drains while we overfill
  SolveService service(opts);
  const CsrMatrix a = laplace_2d(6);

  ServeHandle h1 = service.submit(a, random_rhs(a.rows(), 1));
  ServeHandle h2 = service.submit(a, random_rhs(a.rows(), 2));
  ServeHandle h3 = service.submit(a, random_rhs(a.rows(), 3));
  EXPECT_TRUE(h1);
  EXPECT_TRUE(h2);
  EXPECT_FALSE(h3);  // falsy handle, not an exception
  EXPECT_EQ(service.stats().rejected, 1u);

  service.resume();
  EXPECT_TRUE(h1.wait().report.converged());
  EXPECT_TRUE(h2.wait().report.converged());
}

TEST(SolveService, HigherPriorityRunsFirst) {
  ServiceOptions opts = fast_service_options();
  opts.workers = 1;
  opts.start_paused = true;
  SolveService service(opts);
  const CsrMatrix a = laplace_2d(6);

  ServeRequest low;
  low.priority = 0;
  ServeRequest high;
  high.priority = 10;
  ServeHandle first = service.submit(a, random_rhs(a.rows(), 1), low);
  ServeHandle urgent = service.submit(a, random_rhs(a.rows(), 2), high);
  service.resume();

  const ServeResult& r_urgent = urgent.wait();
  const ServeResult& r_first = first.wait();
  // The high-priority job was picked first even though it arrived second.
  EXPECT_LE(r_urgent.queue_seconds, r_first.queue_seconds);
  EXPECT_TRUE(r_urgent.report.converged());
  EXPECT_TRUE(r_first.report.converged());
}

TEST(SolveService, ShutdownCancelsQueuedJobs) {
  ServiceOptions opts = fast_service_options();
  opts.workers = 1;
  opts.start_paused = true;
  auto service = std::make_unique<SolveService>(opts);
  const CsrMatrix a = laplace_2d(6);
  ServeHandle h = service->submit(a, random_rhs(a.rows(), 1));
  ASSERT_TRUE(h);

  service->shutdown();  // never resumed: the job is harvested, not run
  EXPECT_EQ(h.wait().report.status, SolveStatus::kCancelled);
  EXPECT_FALSE(h.wait().solve_ran);
  // Submissions after shutdown are rejected.
  EXPECT_FALSE(service->submit(a, random_rhs(a.rows(), 2)));
  service.reset();  // double shutdown via destructor is safe
}

TEST(SolveService, DeadlineStampedAtSubmitCoversQueueWait) {
  ServiceOptions opts = fast_service_options();
  opts.workers = 1;
  opts.start_paused = true;
  SolveService service(opts);
  const CsrMatrix a = laplace_2d(6);

  ServeRequest doomed;
  doomed.deadline_seconds = 1e-4;  // expires while the queue is paused
  ServeHandle h = service.submit(a, random_rhs(a.rows(), 1), doomed);
  ASSERT_TRUE(h);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  service.resume();
  const ServeResult& r = h.wait();
  EXPECT_EQ(r.report.status, SolveStatus::kDeadlineExceeded);
  EXPECT_FALSE(r.solve_ran);
}

TEST(SolveService, JobPastDeadlineAtSubmitCompletesImmediately) {
  ServiceOptions opts = fast_service_options();
  opts.start_paused = true;  // no worker could possibly have served it
  SolveService service(opts);
  const CsrMatrix a = laplace_2d(6);

  ServeRequest dead;
  dead.deadline_seconds = 0.0;  // expired before it was even submitted
  ServeHandle h = service.submit(a, random_rhs(a.rows(), 1), dead);
  ASSERT_TRUE(h);  // accepted (and accounted), not refused
  const ServeResult r = h.wait();
  EXPECT_EQ(r.report.status, SolveStatus::kDeadlineExceeded);
  EXPECT_FALSE(r.solve_ran);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(SolveService, WatchdogHarvestsExpiredJobWithoutAWorker) {
  ServiceOptions opts = fast_service_options();
  opts.workers = 1;
  opts.start_paused = true;  // workers never pick anything up
  opts.watchdog_period_seconds = 0.002;
  SolveService service(opts);
  const CsrMatrix a = laplace_2d(6);

  ServeRequest doomed;
  doomed.deadline_seconds = 1e-3;
  ServeHandle h = service.submit(a, random_rhs(a.rows(), 1), doomed);
  ASSERT_TRUE(h);
  // The service stays paused: only the watchdog sweep can complete the
  // job, proving expiry consumes no worker and no queue slot.
  ASSERT_TRUE(h.wait_for(10.0));
  const ServeResult r = h.wait();
  EXPECT_EQ(r.report.status, SolveStatus::kDeadlineExceeded);
  EXPECT_FALSE(r.solve_ran);
  EXPECT_EQ(service.stats().expired, 1u);
}

TEST(SolveService, HigherPriorityShedsLowestPriorityOldestJob) {
  ServiceOptions opts = fast_service_options();
  opts.workers = 1;
  opts.queue_capacity = 2;
  opts.start_paused = true;
  SolveService service(opts);
  const CsrMatrix a = laplace_2d(6);

  ServeRequest low;
  low.priority = 0;
  ServeHandle oldest = service.submit(a, random_rhs(a.rows(), 1), low);
  ServeHandle newer = service.submit(a, random_rhs(a.rows(), 2), low);
  ASSERT_TRUE(oldest);
  ASSERT_TRUE(newer);

  // Queue full; a strictly higher priority evicts the *oldest* of the
  // lowest-priority jobs instead of being refused.
  ServeRequest high;
  high.priority = 5;
  ServeHandle urgent = service.submit(a, random_rhs(a.rows(), 3), high);
  ASSERT_TRUE(urgent);

  const ServeResult shed = oldest.wait();
  EXPECT_EQ(shed.report.status, SolveStatus::kRejected);
  EXPECT_FALSE(shed.solve_ran);
  EXPECT_FALSE(newer.done());  // the newer equal-priority job survived

  service.resume();
  EXPECT_TRUE(urgent.wait().report.converged());
  EXPECT_TRUE(newer.wait().report.converged());
  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.rejected, 0u);  // nothing was refused
}

TEST(SolveService, ShedVictimIsLowestPriorityNotOldest) {
  ServiceOptions opts = fast_service_options();
  opts.workers = 1;
  opts.queue_capacity = 2;
  opts.start_paused = true;
  SolveService service(opts);
  const CsrMatrix a = laplace_2d(6);

  ServeRequest mid;
  mid.priority = 5;
  ServeRequest low;
  low.priority = 0;
  // The *older* job has the *higher* priority: it must be sheltered.
  ServeHandle older_mid = service.submit(a, random_rhs(a.rows(), 1), mid);
  ServeHandle newer_low = service.submit(a, random_rhs(a.rows(), 2), low);

  ServeRequest high;
  high.priority = 3;  // beats only the low job
  ServeHandle arrival = service.submit(a, random_rhs(a.rows(), 3), high);
  ASSERT_TRUE(arrival);
  EXPECT_EQ(newer_low.wait().report.status, SolveStatus::kRejected);
  EXPECT_FALSE(older_mid.done());

  // An arrival that beats nobody is refused, not admitted.
  ServeRequest equal;
  equal.priority = 3;
  EXPECT_FALSE(service.submit(a, random_rhs(a.rows(), 4), equal));
  EXPECT_EQ(service.stats().rejected_capacity, 1u);

  service.resume();
  EXPECT_TRUE(older_mid.wait().report.converged());
  EXPECT_TRUE(arrival.wait().report.converged());
}

TEST(SolveService, RejectionCountersSplitByCause) {
  ServiceOptions opts = fast_service_options();
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.start_paused = true;
  auto service = std::make_unique<SolveService>(opts);
  const CsrMatrix a = laplace_2d(6);

  ServeHandle h = service->submit(a, random_rhs(a.rows(), 1));
  ASSERT_TRUE(h);
  EXPECT_FALSE(service->submit(a, random_rhs(a.rows(), 2)));  // capacity
  service->shutdown();
  EXPECT_FALSE(service->submit(a, random_rhs(a.rows(), 3)));  // shutdown

  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.rejected_capacity, 1u);
  EXPECT_EQ(stats.rejected_shutdown, 1u);
  EXPECT_EQ(stats.rejected, 2u);  // always the sum
}

TEST(SolveService, TransientBuildFailureRecoversViaCooldownProbe) {
  FaultInjector faults;
  faults.fail_service_builds(1, BuildStatus::kInjectedFault);

  ServiceOptions opts = fast_service_options();
  opts.faults = &faults;
  opts.max_build_attempts = 3;
  opts.build_cooldown_seconds = 0.005;
  SolveService service(opts);
  const CsrMatrix a = laplace_2d(8);

  // First request schedules the build; the injected fault trips the
  // breaker into kRetryWait instead of retiring the fingerprint.
  EXPECT_TRUE(service.submit(a, random_rhs(a.rows(), 1)).wait().report
                  .converged());  // served by the fallback rungs meanwhile
  service.drain();
  auto entry = service.store().find(a);
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->state(), BuildState::kRetryWait);
  EXPECT_EQ(service.stats().builds_transient, 1u);
  EXPECT_EQ(service.stats().builds_failed, 0u);

  // Requests keep arriving; once the cooldown expires one of them claims
  // the half-open probe, which succeeds and swaps the tuned P in.
  for (int i = 0; i < 200 && entry->state() != BuildState::kTuned; ++i) {
    (void)service.submit(a, random_rhs(a.rows(), 2)).wait();
    service.drain();
  }
  ASSERT_EQ(entry->state(), BuildState::kTuned);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.builds_started, 2u);  // the failed build + one probe
  EXPECT_EQ(stats.builds_retried, 1u);
  EXPECT_EQ(stats.builds_completed, 1u);
  EXPECT_EQ(stats.builds_failed, 0u);

  // And the recovered warm path actually serves.
  const ServeResult warm = service.submit(a, random_rhs(a.rows(), 3)).wait();
  EXPECT_TRUE(warm.warm);
  EXPECT_TRUE(warm.report.converged());
}

TEST(SolveService, WatchdogReapsHungBuildWithinBudget) {
  FaultInjector faults;
  faults.hang_service_builds(1);  // the build never polls its token

  ServiceOptions opts = fast_service_options();
  opts.faults = &faults;
  // Big enough that a sanitizer-slowed *clean* build never trips it; the
  // hang ignores its deadline either way, so only it meets the watchdog.
  opts.build_budget_seconds = 0.5;
  opts.watchdog_period_seconds = 0.005;
  opts.watchdog_grace_seconds = 0.05;
  opts.build_cooldown_seconds = 10.0;  // no probe during this test
  SolveService service(opts);
  const CsrMatrix a = laplace_2d(6);

  EXPECT_TRUE(
      service.submit(a, random_rhs(a.rows(), 1)).wait().report.converged());
  service.drain();  // returns only because the watchdog killed the hang

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.watchdog_build_kills, 1u);
  EXPECT_EQ(stats.builds_transient, 1u);  // cancellation is transient
  auto entry = service.store().find(a);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state(), BuildState::kRetryWait);

  // The builder slot survived the hang: a different matrix still builds.
  const CsrMatrix b = laplace_2d(8);
  (void)service.submit(b, random_rhs(b.rows(), 2)).wait();
  service.drain();
  EXPECT_EQ(service.stats().builds_completed, 1u);
}

TEST(SolveService, EventLogRecordsTerminalOutcomes) {
  ServiceOptions opts = fast_service_options();
  opts.event_log_capacity = 4;  // force the ring to wrap
  SolveService service(opts);
  const CsrMatrix a = laplace_2d(6);
  for (int i = 0; i < 8; ++i) {
    (void)service.submit(a, random_rhs(a.rows(), static_cast<u64>(i))).wait();
  }
  service.drain();
  const std::vector<ServiceEvent> events = service.recent_events();
  ASSERT_EQ(events.size(), 4u);  // bounded by capacity
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].seconds, events[i].seconds);  // oldest first
  }
}

// ---------------------------------------------------------------------------
// Sharded serving: (fingerprint, shard_layout) keyed plans.

TEST(ArtifactStore, MatrixForCoalescesAndKeysByLayout) {
  ArtifactStore store;
  const CsrMatrix a = laplace_2d(8);
  auto entry = store.intern(a);
  const ShardLayout layout_a = ShardLayout::nnz_balanced(2, a.row_ptr());
  const ShardLayout layout_b = ShardLayout::nnz_balanced(4, a.row_ptr());

  // K concurrent requests for one layout coalesce onto a single plan build.
  std::vector<std::shared_ptr<const CsrMatrix>> got(8);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < got.size(); ++t) {
    threads.emplace_back([&, t] {
      got[t] = entry->matrix_for(PlanBackend::kShardedThreads, layout_a);
    });
  }
  for (std::thread& th : threads) th.join();
  for (const auto& m : got) {
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m, got[0]);  // one shared bound matrix, not eight
    EXPECT_EQ(m->plan_backend(), PlanBackend::kShardedThreads);
  }
  EXPECT_EQ(entry->plan_builds(), 1u);

  // Repeat lookups under the same key never rebuild.
  EXPECT_EQ(entry->matrix_for(PlanBackend::kShardedThreads, layout_a), got[0]);
  EXPECT_EQ(entry->plan_builds(), 1u);

  // A different layout is a different key: second build, different matrix.
  const auto under_b = entry->matrix_for(PlanBackend::kShardedThreads, layout_b);
  EXPECT_NE(under_b, got[0]);
  EXPECT_EQ(entry->plan_builds(), 2u);

  // The single-plan identity key is the pinned matrix itself, build-free.
  EXPECT_EQ(entry->matrix_for(PlanBackend::kSingle, ShardLayout{}),
            entry->matrix());
  EXPECT_EQ(entry->plan_builds(), 2u);

  // Every bound matrix produces the pinned matrix's bits.
  const std::vector<real_t> x = random_rhs(a.cols(), 3);
  EXPECT_EQ(got[0]->multiply(x), entry->matrix()->multiply(x));
  EXPECT_EQ(under_b->multiply(x), entry->matrix()->multiply(x));
}

TEST(SolveService, ShardedBuildServesUnderOtherLayoutBitIdentically) {
  const CsrMatrix a = laplace_2d(8);
  const std::vector<real_t> b = random_rhs(a.rows(), 7);

  // Reference: the unsharded service's cold and warm answers.
  std::vector<real_t> x_cold_ref, x_warm_ref;
  u64 p_ref_fingerprint = 0;
  {
    SolveService service(fast_service_options());
    x_cold_ref = service.submit(a, b).wait().x;
    service.drain();
    ASSERT_EQ(service.stats().builds_completed, 1u);
    auto entry = service.store().find(a);
    ASSERT_NE(entry, nullptr);
    p_ref_fingerprint = entry->tuned()->matrix().content_fingerprint();
    ServeHandle warm = service.submit(a, b);
    ASSERT_TRUE(warm.wait().warm);
    x_warm_ref = warm.wait().x;
  }

  // Sharded service: the MCMC build runs under layout A (3 shards) while
  // solves are served under layout B (2 shards).  Every answer and the
  // tuned preconditioner must be bit-identical to the unsharded service.
  ServiceOptions opts = fast_service_options();
  opts.mcmc_options.shards = ShardLayout::nnz_balanced(3, a.row_ptr());
  opts.solve_shards = 2;
  SolveService service(opts);
  const std::vector<real_t> x_cold = service.submit(a, b).wait().x;
  service.drain();
  ASSERT_EQ(service.stats().builds_completed, 1u);
  EXPECT_EQ(x_cold, x_cold_ref);

  auto entry = service.store().find(a);
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->state(), BuildState::kTuned);
  EXPECT_EQ(entry->tuned()->matrix().content_fingerprint(), p_ref_fingerprint);

  ServeHandle warm = service.submit(a, b);
  ASSERT_TRUE(warm.wait().warm);
  EXPECT_EQ(warm.wait().x, x_warm_ref);

  // The same warm artifact serves under yet another layout: rebinding the
  // entry's matrix to 5 shards leaves the product bits unchanged.
  const auto rebound = entry->matrix_for(
      PlanBackend::kShardedThreads, ShardLayout::nnz_balanced(5, a.row_ptr()));
  EXPECT_EQ(rebound->multiply(b), entry->matrix()->multiply(b));
}

}  // namespace
}  // namespace mcmi::serve
