// Tests for src/gen: every Table 1 matrix family at its published shape —
// dimensions, symmetry, fill bands and condition-number bands.

#include <gtest/gtest.h>

#include <cmath>

#include "dense/matrix.hpp"
#include "dense/svd.hpp"
#include "gen/adv_diff.hpp"
#include "gen/climate.hpp"
#include "gen/laplace.hpp"
#include "gen/matrix_set.hpp"
#include "gen/plasma.hpp"
#include "gen/random_sparse.hpp"

namespace mcmi {
namespace {

TEST(Laplace2d, DimensionAndStencil) {
  const CsrMatrix a = laplace_2d(16);
  EXPECT_EQ(a.rows(), 225);  // (16-1)^2, matching 2DFDLaplace_16
  EXPECT_TRUE(a.is_symmetric());
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 15), -1.0);  // vertical neighbour
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
}

TEST(Laplace2d, ConditionNumberLadder) {
  // Table 1: kappa ~ 1.0e2 at m=16, 4.1e2 at m=32 — the O(h^-2) ladder.
  const real_t k16 =
      condition_number_exact(DenseMatrix::from_csr(laplace_2d(16)));
  const real_t k32 =
      condition_number_exact(DenseMatrix::from_csr(laplace_2d(32)));
  EXPECT_NEAR(k16, 1.0e2, 0.3e2);
  EXPECT_NEAR(k32, 4.1e2, 1.0e2);
  EXPECT_NEAR(k32 / k16, 4.0, 0.5);  // doubling the mesh quadruples kappa
}

TEST(Laplace2d, PositiveDefinite) {
  // All eigenvalues of the 5-point Laplacian are positive: check via the
  // smallest singular value of the symmetric matrix.
  const std::vector<real_t> s =
      singular_values(DenseMatrix::from_csr(laplace_2d(8)));
  EXPECT_GT(s.back(), 0.0);
}

TEST(Laplace1d, Tridiagonal) {
  const CsrMatrix a = laplace_1d(5);
  EXPECT_EQ(a.nnz(), 13);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 2.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), -1.0);
}

TEST(AdvDiff, PaperShapes) {
  const CsrMatrix a1 = unsteady_adv_diff_order1();
  const CsrMatrix a2 = unsteady_adv_diff_order2();
  EXPECT_EQ(a1.rows(), 225);
  EXPECT_EQ(a2.rows(), 225);
  EXPECT_FALSE(a1.is_symmetric());
  EXPECT_FALSE(a2.is_symmetric());
  // Table 1 fill is 0.646; the all-at-once memory structure gives ~0.53.
  EXPECT_GT(a1.fill(), 0.45);
  EXPECT_LT(a1.fill(), 0.75);
}

TEST(AdvDiff, ConditionNumberBands) {
  // Table 1: kappa ~ 4.1e6 (order 1) and 6.6e6 (order 2); we require the
  // same orders of magnitude and the order-2 > order-1 ordering.
  const real_t k1 = condition_number_exact(
      DenseMatrix::from_csr(unsteady_adv_diff_order1()));
  const real_t k2 = condition_number_exact(
      DenseMatrix::from_csr(unsteady_adv_diff_order2()));
  EXPECT_GT(k1, 5e5);
  EXPECT_LT(k1, 5e7);
  EXPECT_GT(k2, 1e6);
  EXPECT_LT(k2, 5e7);
  EXPECT_GT(k2, k1);
}

TEST(AdvDiff, GradingControlsConditioning) {
  AdvDiffOptions mild;
  mild.grading = 1.2;
  AdvDiffOptions steep;
  steep.grading = 2.0;
  const real_t k_mild =
      condition_number_exact(DenseMatrix::from_csr(unsteady_adv_diff(mild)));
  const real_t k_steep =
      condition_number_exact(DenseMatrix::from_csr(unsteady_adv_diff(steep)));
  EXPECT_GT(k_steep, 10.0 * k_mild);
}

TEST(AdvDiff, RejectsBadOptions) {
  AdvDiffOptions o;
  o.order = 3;
  EXPECT_THROW(unsteady_adv_diff(o), Error);
  o.order = 1;
  o.space = 2;
  EXPECT_THROW(unsteady_adv_diff(o), Error);
}

TEST(Plasma, PaperShapes) {
  const CsrMatrix a512 = plasma_a00512();
  const CsrMatrix a8192 = plasma_a08192();
  EXPECT_EQ(a512.rows(), 512);
  EXPECT_EQ(a8192.rows(), 8192);
  EXPECT_FALSE(a512.is_symmetric());
  EXPECT_FALSE(a8192.is_symmetric());
  // Fill targets: 0.059 and 0.0007 in Table 1.
  EXPECT_GT(a512.fill(), 0.02);
  EXPECT_LT(a512.fill(), 0.09);
  EXPECT_GT(a8192.fill(), 3e-4);
  EXPECT_LT(a8192.fill(), 1.2e-3);
}

TEST(Plasma, CoarseConditionBand) {
  const real_t k =
      condition_number_exact(DenseMatrix::from_csr(plasma_a00512()));
  EXPECT_GT(k, 50.0);   // Table 1: 1.9e3; same operator family, kappa grows
  EXPECT_LT(k, 5e4);    // with resolution (checked in features tests)
}

TEST(Climate, ShapeAndAsymmetry) {
  const CsrMatrix a = climate_nonsym_r3_a11(false);
  EXPECT_EQ(a.rows(), 2116);  // reduced default
  EXPECT_FALSE(a.is_symmetric());
  EXPECT_GT(a.fill(), 0.001);
  EXPECT_LT(a.fill(), 0.05);
  // Nonzero diagonal everywhere (required by the MCMC preconditioner).
  for (index_t i = 0; i < a.rows(); ++i) {
    ASSERT_NE(a.at(i, i), 0.0) << "zero diagonal at " << i;
  }
}

TEST(PddRealSparse, PaperShapes) {
  for (index_t n : {64, 128, 256}) {
    const CsrMatrix a = pdd_real_sparse(n);
    EXPECT_EQ(a.rows(), n);
    EXPECT_NEAR(a.fill(), 0.1, 0.02);
    const real_t k = condition_number_exact(DenseMatrix::from_csr(a));
    EXPECT_GT(k, 1.5);   // Table 1: 5.0 - 1.3e1
    EXPECT_LT(k, 50.0);
  }
}

TEST(PddRealSparse, Deterministic) {
  const CsrMatrix a = pdd_real_sparse(64, 0.1, 9);
  const CsrMatrix b = pdd_real_sparse(64, 0.1, 9);
  ASSERT_EQ(a.nnz(), b.nnz());
  EXPECT_EQ(a.values(), b.values());
  const CsrMatrix c = pdd_real_sparse(64, 0.1, 10);
  EXPECT_NE(a.values(), c.values());
}

TEST(RandomSpd, IsSymmetricPositiveDefinite) {
  const CsrMatrix a = random_spd(40, 4, 0.5, 21);
  EXPECT_TRUE(a.is_symmetric(1e-12));
  const std::vector<real_t> s = singular_values(DenseMatrix::from_csr(a));
  EXPECT_GT(s.back(), 0.0);
}

TEST(RandomDiagDominant, DominanceHolds) {
  const CsrMatrix a = random_diag_dominant(50, 6, 1.5, 23);
  for (index_t i = 0; i < a.rows(); ++i) {
    real_t off = 0.0;
    for (index_t j = 0; j < a.cols(); ++j) {
      if (j != i) off += std::abs(a.at(i, j));
    }
    EXPECT_GT(std::abs(a.at(i, i)), off * 0.999);
  }
}

TEST(MatrixSet, AllPaperNamesConstruct) {
  for (const std::string& name : paper_matrix_names()) {
    const NamedMatrix m = make_matrix(name);
    EXPECT_EQ(m.name, name);
    EXPECT_GT(m.matrix.rows(), 0);
  }
  EXPECT_THROW(make_matrix("no_such_matrix"), Error);
}

TEST(MatrixSet, SpdFlagsMatchSymmetry) {
  for (const std::string& name : paper_matrix_names()) {
    const NamedMatrix m = make_matrix(name);
    if (m.spd) EXPECT_TRUE(m.matrix.is_symmetric()) << name;
  }
}

TEST(MatrixSet, TrainingSetExcludesTestMatrix) {
  const auto training = training_matrix_set(1200);
  for (const NamedMatrix& m : training) {
    EXPECT_NE(m.name, "unsteady_adv_diff_order2_0001");
    EXPECT_LE(m.matrix.rows(), 1200);
  }
  EXPECT_GE(training.size(), 5u);
}

/// Property sweep over Laplacian sizes: dimension, symmetry and
/// O(h^-2) kappa growth.
class LaplaceLadder : public ::testing::TestWithParam<index_t> {};

TEST_P(LaplaceLadder, Invariants) {
  const index_t m = GetParam();
  const CsrMatrix a = laplace_2d(m);
  EXPECT_EQ(a.rows(), (m - 1) * (m - 1));
  EXPECT_TRUE(a.is_symmetric());
  EXPECT_DOUBLE_EQ(a.norm_inf(), 8.0);  // interior row: 4 + 4x|-1|
}

INSTANTIATE_TEST_SUITE_P(Meshes, LaplaceLadder,
                         ::testing::Values(4, 8, 16, 24, 32));

}  // namespace
}  // namespace mcmi
