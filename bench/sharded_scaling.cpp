// Sharded-execution scaling benchmark: per-shard work balance and reduce
// overhead of the ShardedPlan backend against the single-plan path on the
// 512^2-family Laplacian (ROADMAP sharded-execution item).
//
// Three rows, each swept over shard counts (arg 0 = the single-plan
// baseline, not a one-shard ShardedPlan):
//  - BM_ShardedSpmv/{0,1,2,4,8}     : plain y = A x.  The gated pair
//                                     4-shard : single asserts sharding
//                                     keeps >= 0.9x of the single-plan
//                                     throughput (the flattened
//                                     (shard, chunk) schedule must not cap
//                                     parallelism at the shard count).
//  - BM_ShardedFusedDot/{0,1,2,4,8} : fused multiply_dot_norm2 — the
//                                     ShardReducer's fixed-block fold on
//                                     top of the product; the delta against
//                                     BM_ShardedSpmv at the same shard
//                                     count is the deterministic-reduce
//                                     overhead (info rows).
//  - BM_ShardedGridBuild/{0,4}      : a batched MCMC grid build with and
//                                     without a shard layout — the
//                                     span-scheduled walk ensemble must not
//                                     tax the builders.
//
// Sharded rows report work_imbalance = max shard nnz / (nnz / shards): 1.0
// is a perfect nnz split, and the value is a pure function of the layout,
// so a regression here is a layout bug, not noise.
//
// Run with --json[=path] to mirror the report into a JSON file (default
// BENCH_sharded_scaling.json); scripts/bench_compare.py diffs it against
// the committed BENCH_sharded_pr9.json baseline.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "gen/laplace.hpp"
#include "mcmc/batched_build.hpp"
#include "mcmc/walk_kernel.hpp"
#include "sparse/csr.hpp"
#include "sparse/sharded_plan.hpp"

namespace {

using namespace mcmi;

/// The 512^2 family: laplace_2d(512) is the (511)^2-unknown five-point
/// Laplacian, ~1.3M nonzeros — dozens of plan chunks, so every shard count
/// here still exposes full chunk-level parallelism.
const CsrMatrix& bench_matrix() {
  static const CsrMatrix a = laplace_2d(512);
  return a;
}

std::vector<real_t> bench_vector(index_t n, u64 salt) {
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    x[i] = std::sin(static_cast<real_t>(i + 1) * 0.7 +
                    static_cast<real_t>(salt));
  }
  return x;
}

/// Matrix bound to `shards` shards (0 = the single-plan baseline), plus the
/// layout's work imbalance for the counter row.
CsrMatrix bound_matrix(index_t shards, double* work_imbalance) {
  CsrMatrix a = bench_matrix();
  *work_imbalance = 1.0;
  if (shards <= 0) return a;
  const ShardLayout layout = ShardLayout::nnz_balanced(shards, a.row_ptr());
  index_t max_nnz = 0;
  for (index_t s = 0; s < shards; ++s) {
    max_nnz = std::max(max_nnz, a.row_ptr()[layout.boundaries[s + 1]] -
                                    a.row_ptr()[layout.boundaries[s]]);
  }
  const double fair =
      static_cast<double>(a.nnz()) / static_cast<double>(shards);
  *work_imbalance = static_cast<double>(max_nnz) / fair;
  a.set_plan_backend(PlanBackend::kShardedThreads, layout);
  return a;
}

void BM_ShardedSpmv(benchmark::State& state) {
  double imbalance = 1.0;
  const CsrMatrix a = bound_matrix(state.range(0), &imbalance);
  const std::vector<real_t> x = bench_vector(a.cols(), 3);
  std::vector<real_t> y(static_cast<std::size_t>(a.rows()));
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
  state.counters["work_imbalance"] = imbalance;
}
BENCHMARK(BM_ShardedSpmv)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ShardedFusedDot(benchmark::State& state) {
  double imbalance = 1.0;
  const CsrMatrix a = bound_matrix(state.range(0), &imbalance);
  const std::vector<real_t> x = bench_vector(a.cols(), 5);
  const std::vector<real_t> w = bench_vector(a.rows(), 9);
  std::vector<real_t> y(static_cast<std::size_t>(a.rows()));
  real_t dot = 0.0, norm = 0.0;
  for (auto _ : state) {
    a.multiply_dot_norm2(x, y, w, dot, norm);
    benchmark::DoNotOptimize(dot);
    benchmark::DoNotOptimize(norm);
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
  state.counters["work_imbalance"] = imbalance;
}
BENCHMARK(BM_ShardedFusedDot)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ShardedGridBuild(benchmark::State& state) {
  // Small grid-build workload (the 512^2 operator would dominate CI time):
  // what matters is the relative cost of span-scheduled vs plain row loops.
  const CsrMatrix a = laplace_2d(48);
  const std::vector<GridTrial> trials = {{0.25, 0.25}, {0.25, 0.125}};
  McmcOptions options;
  if (state.range(0) > 0) {
    options.shards = ShardLayout::nnz_balanced(state.range(0), a.row_ptr());
  }
  WalkKernelCache cache;
  long long transitions = 0;
  for (auto _ : state) {
    const BatchedGridResult r =
        batched_grid_build(a, 1.0, trials, options, &cache);
    benchmark::DoNotOptimize(r.preconditioners.data());
    for (const McmcBuildInfo& info : r.info) {
      transitions += info.total_transitions;
    }
  }
  state.SetItemsProcessed(transitions);
}
BENCHMARK(BM_ShardedGridBuild)->Arg(0)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

#define MCMI_BENCH_DEFAULT_JSON "BENCH_sharded_scaling.json"
#include "json_main.hpp"
