#include "experiment_cache.hpp"

#include <cstdio>
#include <fstream>

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/timer.hpp"

namespace mcmi::bench {

namespace {

constexpr char kMagic[9] = "mcmiexp2";

std::string cache_path() {
  return env_string("MCMI_CACHE", "mcmi_experiment_cache.bin");
}

/// Fingerprint of everything that changes the results; a cache with a
/// different fingerprint is discarded.
u64 fingerprint(const ExperimentOptions& o) {
  u64 h = 0x9e3779b97f4a7c15ULL;
  auto mixin = [&h](u64 v) { h = mix64(h ^ v); };
  mixin(static_cast<u64>(o.data.replicates));
  mixin(static_cast<u64>(o.test_replicates));
  mixin(static_cast<u64>(o.pretrain.epochs));
  mixin(static_cast<u64>(o.bo_batch));
  mixin(static_cast<u64>(o.training_max_dim));
  mixin(static_cast<u64>(o.seed));
  mixin(static_cast<u64>(o.surrogate.gnn.hidden));
  mixin(full_scale() ? 1 : 0);
  return h;
}

void put_u64(std::ofstream& out, u64 v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
u64 get_u64(std::ifstream& in) {
  u64 v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
void put_real(std::ofstream& out, real_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
real_t get_real(std::ifstream& in) {
  real_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
void put_reals(std::ofstream& out, const std::vector<real_t>& v) {
  put_u64(out, v.size());
  for (real_t x : v) put_real(out, x);
}
std::vector<real_t> get_reals(std::ifstream& in) {
  std::vector<real_t> v(get_u64(in));
  for (real_t& x : v) x = get_real(in);
  return v;
}

void put_observations(std::ofstream& out,
                      const std::vector<GridObservation>& obs) {
  put_u64(out, obs.size());
  for (const GridObservation& g : obs) {
    put_real(out, g.params.alpha);
    put_real(out, g.params.eps);
    put_real(out, g.params.delta);
    put_reals(out, g.ys);
  }
}

std::vector<GridObservation> get_observations(std::ifstream& in) {
  std::vector<GridObservation> obs(get_u64(in));
  for (GridObservation& g : obs) {
    g.params.alpha = get_real(in);
    g.params.eps = get_real(in);
    g.params.delta = get_real(in);
    g.ys = get_reals(in);
  }
  return obs;
}

void save_results(const ExperimentResults& r, u64 print, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return;  // caching is best-effort
  out.write(kMagic, 8);
  put_u64(out, print);
  put_u64(out, static_cast<u64>(r.training_samples));
  put_u64(out, static_cast<u64>(r.validation_samples));
  put_real(out, r.pre_bo_validation_loss);
  put_real(out, r.bo_enhanced_validation_loss);
  put_u64(out, static_cast<u64>(r.baseline_steps));
  put_observations(out, r.test_grid);
  put_u64(out, r.calibration_pre.size());
  for (const CalibrationSample& s : r.calibration_pre) {
    put_real(out, s.observed);
    put_real(out, s.mu);
    put_real(out, s.sigma);
  }
  put_u64(out, r.calibration_post.size());
  for (const CalibrationSample& s : r.calibration_post) {
    put_real(out, s.observed);
    put_real(out, s.mu);
    put_real(out, s.sigma);
  }
  put_u64(out, r.inclusion.size());
  for (const InclusionCell& c : r.inclusion) {
    put_real(out, c.params.alpha);
    put_real(out, c.params.eps);
    put_real(out, c.params.delta);
    put_real(out, c.empirical_mean);
    put_real(out, c.empirical_std);
    put_real(out, c.predicted_pre);
    put_real(out, c.predicted_post);
    put_u64(out, c.included_pre ? 1 : 0);
    put_u64(out, c.included_post ? 1 : 0);
  }
  put_observations(out, r.grid_strategy.evaluated);
  put_observations(out, r.balanced_strategy.evaluated);
  put_observations(out, r.explore_strategy.evaluated);
}

bool load_results(ExperimentResults& r, u64 expected_print,
                  const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  char magic[8];
  in.read(magic, 8);
  if (!in.good() || std::string(magic, 8) != kMagic) return false;
  if (get_u64(in) != expected_print) return false;
  r.training_samples = static_cast<index_t>(get_u64(in));
  r.validation_samples = static_cast<index_t>(get_u64(in));
  r.pre_bo_validation_loss = get_real(in);
  r.bo_enhanced_validation_loss = get_real(in);
  r.baseline_steps = static_cast<index_t>(get_u64(in));
  r.test_grid = get_observations(in);
  r.calibration_pre.resize(get_u64(in));
  for (CalibrationSample& s : r.calibration_pre) {
    s.observed = get_real(in);
    s.mu = get_real(in);
    s.sigma = get_real(in);
  }
  r.calibration_post.resize(get_u64(in));
  for (CalibrationSample& s : r.calibration_post) {
    s.observed = get_real(in);
    s.mu = get_real(in);
    s.sigma = get_real(in);
  }
  r.inclusion.resize(get_u64(in));
  for (InclusionCell& c : r.inclusion) {
    c.params.alpha = get_real(in);
    c.params.eps = get_real(in);
    c.params.delta = get_real(in);
    c.empirical_mean = get_real(in);
    c.empirical_std = get_real(in);
    c.predicted_pre = get_real(in);
    c.predicted_post = get_real(in);
    c.included_pre = get_u64(in) != 0;
    c.included_post = get_u64(in) != 0;
  }
  r.grid_strategy.name = "grid-search(64)";
  r.grid_strategy.evaluated = get_observations(in);
  r.balanced_strategy.name = "bo-balanced(32, xi=0.05)";
  r.balanced_strategy.evaluated = get_observations(in);
  r.explore_strategy.name = "bo-explore(32, xi=1.00)";
  r.explore_strategy.evaluated = get_observations(in);
  return in.good();
}

}  // namespace

ExperimentOptions figure_experiment_options() {
  ExperimentOptions opt;  // env-sensitive defaults (see ExperimentOptions())
  return opt;
}

ExperimentResults run_or_load_experiment(const std::string& label) {
  const ExperimentOptions opt = figure_experiment_options();
  const u64 print = fingerprint(opt);
  ExperimentResults results;
  if (load_results(results, print, cache_path())) {
    std::printf("[%s] loaded cached experiment from %s\n", label.c_str(),
                cache_path().c_str());
    return results;
  }
  std::printf("[%s] running the full tuning experiment (replicates=%lld, "
              "epochs=%lld; set MCMI_REPLICATES/MCMI_EPOCHS/MCMI_FULL to "
              "rescale)\n",
              label.c_str(), static_cast<long long>(opt.data.replicates),
              static_cast<long long>(opt.pretrain.epochs));
  WallTimer timer;
  TuningExperiment experiment(opt);
  experiment.run();
  std::printf("[%s] experiment finished in %.1f s\n", label.c_str(),
              timer.seconds());
  save_results(experiment.results(), print, cache_path());
  return experiment.results();
}

}  // namespace mcmi::bench
