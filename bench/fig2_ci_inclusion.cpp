// Regenerates Figure 2: confidence-interval inclusion heatmaps over the
// (eps, delta) grid for each alpha — does the surrogate's predicted mean
// fall inside the 99% empirical confidence interval of the replicated runs?
// Top block = Pre-BO model, bottom block = BO-enhanced model.
//
// Paper shape: the BO-enhanced model achieves substantially higher inclusion
// across broad (eps, delta) regions, most visibly at alpha in {4, 5}; the
// empirical-mean heatmap shows the success region eps <~ delta.

#include <cstdio>
#include <iostream>
#include <map>

#include "core/table.hpp"
#include "experiment_cache.hpp"
#include "mcmc/params.hpp"

int main() {
  using namespace mcmi;
  const ExperimentResults r = bench::run_or_load_experiment("fig2");

  const std::vector<real_t> alphas = paper_alpha_values();
  const std::vector<real_t> eps_values = paper_eps_values();

  // Index inclusion cells by (alpha, eps, delta).
  std::map<std::tuple<real_t, real_t, real_t>, const InclusionCell*> cells;
  for (const InclusionCell& c : r.inclusion) {
    cells[{c.params.alpha, c.params.eps, c.params.delta}] = &c;
  }

  auto print_heatmap = [&](const char* title, auto accessor) {
    std::printf("\n-- %s --\n", title);
    for (real_t alpha : alphas) {
      TextTable table({"alpha=" + TextTable::fmt(alpha, 2) + "  eps\\delta",
                       TextTable::fmt(eps_values[0], 4),
                       TextTable::fmt(eps_values[1], 4),
                       TextTable::fmt(eps_values[2], 4),
                       TextTable::fmt(eps_values[3], 4)});
      for (real_t eps : eps_values) {
        std::vector<std::string> row = {TextTable::fmt(eps, 4)};
        for (real_t delta : eps_values) {
          const auto it = cells.find({alpha, eps, delta});
          row.push_back(it == cells.end() ? "-" : accessor(*it->second));
        }
        table.add_row(std::move(row));
      }
      table.print(std::cout);
    }
  };

  std::printf("== Figure 2: predicted-mean inclusion in the 99%% empirical "
              "CI on the unseen matrix ==\n");
  print_heatmap("Pre-BO model (IN = mean inside the empirical CI)",
                [](const InclusionCell& c) {
                  return std::string(c.included_pre ? "IN" : "out");
                });
  print_heatmap("BO-enhanced model",
                [](const InclusionCell& c) {
                  return std::string(c.included_post ? "IN" : "out");
                });
  print_heatmap("empirical mean y(A, x_M)  [success region: eps <~ delta]",
                [](const InclusionCell& c) {
                  return TextTable::fmt(c.empirical_mean, 3);
                });

  index_t in_pre = 0, in_post = 0;
  for (const InclusionCell& c : r.inclusion) {
    in_pre += c.included_pre ? 1 : 0;
    in_post += c.included_post ? 1 : 0;
  }
  std::printf("\ninclusion totals: Pre-BO %lld/%zu, BO-enhanced %lld/%zu "
              "(%s)\n",
              static_cast<long long>(in_pre), r.inclusion.size(),
              static_cast<long long>(in_post), r.inclusion.size(),
              in_post >= in_pre
                  ? "BO round improves pointwise accuracy, as in the paper"
                  : "no improvement at this scale");

  // CSV mirror of the raw cells.
  TextTable csv({"alpha", "eps", "delta", "empirical_mean", "empirical_std",
                 "pred_pre", "pred_post", "included_pre", "included_post"});
  for (const InclusionCell& c : r.inclusion) {
    csv.add_row({TextTable::fmt(c.params.alpha, 3),
                 TextTable::fmt(c.params.eps, 4),
                 TextTable::fmt(c.params.delta, 4),
                 TextTable::fmt(c.empirical_mean, 5),
                 TextTable::fmt(c.empirical_std, 5),
                 TextTable::fmt(c.predicted_pre, 5),
                 TextTable::fmt(c.predicted_post, 5),
                 c.included_pre ? "1" : "0", c.included_post ? "1" : "0"});
  }
  csv.write_csv("fig2_ci_inclusion.csv");
  std::printf("[fig2] CSV written to fig2_ci_inclusion.csv\n");
  return 0;
}
