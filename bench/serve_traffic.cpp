// Serving-layer traffic benchmark: requests/sec, tail latency and store hit
// rate for the SolveService under a synthetic traffic mix over the gen/
// matrix families (ROADMAP item 1).
//
// Four rows:
//  - BM_ServeWarmPath   : a pre-warmed service (tuned preconditioners
//                         already swapped in) serving batches of requests —
//                         the steady state of a long-lived deployment.
//  - BM_ServeColdInline : the status quo the serving layer replaces — every
//                         request pays the full MCMC build inline, at the
//                         same tolerance and parameters (equal convergence).
//                         The gated pair warm:cold asserts the warm path
//                         is >= 3x faster per request.
//  - BM_ServeTrafficMix : a cold-started service under a skewed 60/30/10
//                         fingerprint mix; reports requests/sec, p50/p95/
//                         p99 latency and the store hit rate (info row).
//  - BM_ServeOverload   : a pre-warmed service under sustained ~2x-capacity
//                         bursts of mixed priorities and deadlines against
//                         a deliberately small queue; reports goodput
//                         (completed requests/sec — shed, expired and
//                         refused work doesn't count) plus the shed/
//                         expired/refused split.  The gated pair
//                         overload:mix asserts that admission control keeps
//                         the overloaded iteration cheaper than the healthy
//                         cold-start mix at a calibrated ratio — i.e. the
//                         service degrades by doing *less work*, not by
//                         getting slower at it.
//
// All rows measure process CPU time (workers run on their own threads) and
// report real time, so requests/sec means wall-clock throughput.
//
// Run with --json[=path] to mirror the report into a JSON file (default
// BENCH_serve_traffic.json); scripts/bench_compare.py diffs it against the
// committed BENCH_serve_pr8.json baseline.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "core/rng.hpp"
#include "gen/laplace.hpp"
#include "serve/solve_service.hpp"
#include "solve/orchestrator.hpp"

namespace {

using namespace mcmi;
using namespace mcmi::serve;

/// Neumann-convergent MCMC parameters for the Laplacian family.  The tight
/// (eps, delta) corner drives a walk-heavy build — the realistic regime
/// where amortising the build across requests is the whole point.
McmcParams bench_params() { return {1.0, 0.07, 0.07}; }

/// The three fingerprints of the traffic mix.
std::vector<CsrMatrix> bench_matrices() {
  return {laplace_2d(16), laplace_2d(12), laplace_2d(8)};
}

std::vector<real_t> random_rhs(index_t n, u64 seed) {
  Xoshiro256 rng = make_stream(seed);
  std::vector<real_t> b(static_cast<std::size_t>(n));
  for (real_t& v : b) v = normal01(rng);
  return b;
}

constexpr int kBatch = 12;  ///< requests per timed batch (warm/cold rows)

ServiceOptions bench_service_options() {
  ServiceOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 128;
  opts.mcmc_params = bench_params();
  return opts;
}

// ---- warm path: the steady state ------------------------------------------

void BM_ServeWarmPath(benchmark::State& state) {
  const std::vector<CsrMatrix> mats = bench_matrices();
  SolveService service(bench_service_options());
  // Pre-warm: one cold request per fingerprint, then wait for the
  // background builds to swap the tuned preconditioners in.
  for (std::size_t m = 0; m < mats.size(); ++m) {
    ServeHandle h = service.submit(
        mats[m], random_rhs(mats[m].rows(), static_cast<u64>(m)));
    (void)h.wait();
  }
  service.drain();

  u64 seed = 100;
  for (auto _ : state) {
    std::vector<ServeHandle> handles;
    handles.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      const CsrMatrix& a = mats[static_cast<std::size_t>(i) % mats.size()];
      handles.push_back(service.submit(a, random_rhs(a.rows(), seed++)));
    }
    for (const ServeHandle& h : handles) {
      benchmark::DoNotOptimize(h.wait().report.converged());
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  const ServiceStats stats = service.stats();
  state.counters["hit_rate"] =
      static_cast<double>(stats.warm_requests) /
      static_cast<double>(std::max<u64>(stats.warm_requests +
                                            stats.cold_requests, 1));
}
BENCHMARK(BM_ServeWarmPath)->MeasureProcessCPUTime()->UseRealTime();

// ---- cold path: tuning-in-line status quo ---------------------------------

void BM_ServeColdInline(benchmark::State& state) {
  const std::vector<CsrMatrix> mats = bench_matrices();
  u64 seed = 100;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      const CsrMatrix& a = mats[static_cast<std::size_t>(i) % mats.size()];
      const std::vector<real_t> b = random_rhs(a.rows(), seed++);
      // Status quo: a fresh orchestrator per request, the MCMC build paid
      // inline on the request path, same params/tolerance as the warm row.
      SolveOrchestrator orchestrator(a);
      SolveRequest req;
      req.mcmc_params = bench_params();
      std::vector<real_t> x(b.size(), 0.0);
      benchmark::DoNotOptimize(orchestrator.solve(b, x, req).converged());
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ServeColdInline)->MeasureProcessCPUTime()->UseRealTime();

// ---- traffic mix: cold start, skewed popularity ---------------------------

void BM_ServeTrafficMix(benchmark::State& state) {
  const std::vector<CsrMatrix> mats = bench_matrices();
  constexpr int kRequests = 24;
  std::vector<real_t> latencies_ms;
  double hit_rate = 0.0;

  for (auto _ : state) {
    SolveService service(bench_service_options());
    Xoshiro256 rng = make_stream(42);
    // Two waves: the first hits the service cold (fallback rungs while the
    // builds run); the drain lets the swap-ins land; the second wave sees
    // the warm store.  hit_rate over both waves is the cold-start curve.
    for (int wave = 0; wave < 2; ++wave) {
      std::vector<ServeHandle> handles;
      handles.reserve(kRequests);
      for (int i = 0; i < kRequests; ++i) {
        // Skewed popularity: 60% / 30% / 10% over the three fingerprints.
        const real_t u = uniform01(rng);
        const std::size_t pick = u < 0.6 ? 0 : (u < 0.9 ? 1 : 2);
        const CsrMatrix& a = mats[pick];
        handles.push_back(
            service.submit(a, random_rhs(a.rows(), static_cast<u64>(i))));
      }
      for (const ServeHandle& h : handles) {
        latencies_ms.push_back(h.wait().total_seconds * 1e3);
      }
      service.drain();
    }
    const ServiceStats stats = service.stats();
    hit_rate = static_cast<double>(stats.warm_requests) /
               static_cast<double>(
                   std::max<u64>(stats.warm_requests + stats.cold_requests,
                                 1));
  }
  state.SetItemsProcessed(state.iterations() * 2 * kRequests);

  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto percentile = [&](double q) {
    if (latencies_ms.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(latencies_ms.size() - 1));
    return static_cast<double>(latencies_ms[idx]);
  };
  state.counters["p50_ms"] = percentile(0.50);
  state.counters["p95_ms"] = percentile(0.95);
  state.counters["p99_ms"] = percentile(0.99);
  state.counters["hit_rate"] = hit_rate;
}
BENCHMARK(BM_ServeTrafficMix)->MeasureProcessCPUTime()->UseRealTime();

// ---- overload: sustained 2x capacity, mixed priorities/deadlines ----------

void BM_ServeOverload(benchmark::State& state) {
  const std::vector<CsrMatrix> mats = bench_matrices();
  ServiceOptions opts = bench_service_options();
  // A queue much smaller than the burst: admission control (shed + refuse)
  // and the expiry sweep are what is being measured, not queueing slack.
  opts.queue_capacity = 8;
  opts.watchdog_period_seconds = 0.002;
  SolveService service(opts);
  // Pre-warm so per-request cost is the steady-state warm cost.
  for (std::size_t m = 0; m < mats.size(); ++m) {
    (void)service
        .submit(mats[m], random_rhs(mats[m].rows(), static_cast<u64>(m)))
        .wait();
  }
  service.drain();

  // ~2x capacity: each burst offers twice what queue + workers can hold,
  // and the next burst lands as soon as the previous one resolved — the
  // service never sees an idle queue.
  constexpr int kBurst = 48;
  u64 offered = 0;
  u64 seed = 500;
  for (auto _ : state) {
    std::vector<ServeHandle> handles;
    handles.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) {
      const CsrMatrix& a = mats[static_cast<std::size_t>(i) % mats.size()];
      ServeRequest req;
      req.priority = i % 3;  // three priority tiers, decorrelated bursts
      // A latency-sensitive tier: tight deadlines that queue wait can
      // plausibly burn through under overload (a full queue is ~1 ms of
      // work ahead of you at warm per-request cost).
      if (i % 4 == 1) req.deadline_seconds = 1e-3;
      ++offered;
      ServeHandle h = service.submit(a, random_rhs(a.rows(), seed++), req);
      if (h) handles.push_back(std::move(h));
    }
    for (const ServeHandle& h : handles) {
      benchmark::DoNotOptimize(h.wait().solve_ran);
    }
  }
  service.drain();

  const ServiceStats stats = service.stats();
  // Pre-warm requests don't belong to the offered load.
  const u64 goodput = stats.completed - 3;
  state.SetItemsProcessed(static_cast<int64_t>(goodput));
  const auto rate = [offered](u64 n) {
    return static_cast<double>(n) / static_cast<double>(std::max<u64>(offered, 1));
  };
  state.counters["goodput"] = rate(goodput);
  state.counters["shed_rate"] = rate(stats.shed);
  state.counters["expired_rate"] = rate(stats.expired);
  state.counters["refused_rate"] = rate(stats.rejected);
}
BENCHMARK(BM_ServeOverload)->MeasureProcessCPUTime()->UseRealTime();

}  // namespace

#define MCMI_BENCH_DEFAULT_JSON "BENCH_serve_traffic.json"
#include "json_main.hpp"
