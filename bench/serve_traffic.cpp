// Serving-layer traffic benchmark: requests/sec, tail latency and store hit
// rate for the SolveService under a synthetic traffic mix over the gen/
// matrix families (ROADMAP item 1).
//
// Three rows:
//  - BM_ServeWarmPath   : a pre-warmed service (tuned preconditioners
//                         already swapped in) serving batches of requests —
//                         the steady state of a long-lived deployment.
//  - BM_ServeColdInline : the status quo this PR replaces — every request
//                         pays the full MCMC build inline, at the same
//                         tolerance and parameters (equal convergence).
//                         The gated pair warm:cold asserts the warm path
//                         is >= 3x faster per request.
//  - BM_ServeTrafficMix : a cold-started service under a skewed 60/30/10
//                         fingerprint mix; reports requests/sec, p50/p95/
//                         p99 latency and the store hit rate (info row).
//
// All rows measure process CPU time (workers run on their own threads) and
// report real time, so requests/sec means wall-clock throughput.
//
// Run with --json[=path] to mirror the report into a JSON file (default
// BENCH_serve_traffic.json); scripts/bench_compare.py diffs it against the
// committed BENCH_serve_pr7.json baseline.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "core/rng.hpp"
#include "gen/laplace.hpp"
#include "serve/solve_service.hpp"
#include "solve/orchestrator.hpp"

namespace {

using namespace mcmi;
using namespace mcmi::serve;

/// Neumann-convergent MCMC parameters for the Laplacian family.  The tight
/// (eps, delta) corner drives a walk-heavy build — the realistic regime
/// where amortising the build across requests is the whole point.
McmcParams bench_params() { return {1.0, 0.07, 0.07}; }

/// The three fingerprints of the traffic mix.
std::vector<CsrMatrix> bench_matrices() {
  return {laplace_2d(16), laplace_2d(12), laplace_2d(8)};
}

std::vector<real_t> random_rhs(index_t n, u64 seed) {
  Xoshiro256 rng = make_stream(seed);
  std::vector<real_t> b(static_cast<std::size_t>(n));
  for (real_t& v : b) v = normal01(rng);
  return b;
}

constexpr int kBatch = 12;  ///< requests per timed batch (warm/cold rows)

ServiceOptions bench_service_options() {
  ServiceOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 128;
  opts.mcmc_params = bench_params();
  return opts;
}

// ---- warm path: the steady state ------------------------------------------

void BM_ServeWarmPath(benchmark::State& state) {
  const std::vector<CsrMatrix> mats = bench_matrices();
  SolveService service(bench_service_options());
  // Pre-warm: one cold request per fingerprint, then wait for the
  // background builds to swap the tuned preconditioners in.
  for (std::size_t m = 0; m < mats.size(); ++m) {
    ServeHandle h = service.submit(
        mats[m], random_rhs(mats[m].rows(), static_cast<u64>(m)));
    (void)h.wait();
  }
  service.drain();

  u64 seed = 100;
  for (auto _ : state) {
    std::vector<ServeHandle> handles;
    handles.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      const CsrMatrix& a = mats[static_cast<std::size_t>(i) % mats.size()];
      handles.push_back(service.submit(a, random_rhs(a.rows(), seed++)));
    }
    for (const ServeHandle& h : handles) {
      benchmark::DoNotOptimize(h.wait().report.converged());
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  const ServiceStats stats = service.stats();
  state.counters["hit_rate"] =
      static_cast<double>(stats.warm_requests) /
      static_cast<double>(std::max<u64>(stats.warm_requests +
                                            stats.cold_requests, 1));
}
BENCHMARK(BM_ServeWarmPath)->MeasureProcessCPUTime()->UseRealTime();

// ---- cold path: tuning-in-line status quo ---------------------------------

void BM_ServeColdInline(benchmark::State& state) {
  const std::vector<CsrMatrix> mats = bench_matrices();
  u64 seed = 100;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      const CsrMatrix& a = mats[static_cast<std::size_t>(i) % mats.size()];
      const std::vector<real_t> b = random_rhs(a.rows(), seed++);
      // Status quo: a fresh orchestrator per request, the MCMC build paid
      // inline on the request path, same params/tolerance as the warm row.
      SolveOrchestrator orchestrator(a);
      SolveRequest req;
      req.mcmc_params = bench_params();
      std::vector<real_t> x(b.size(), 0.0);
      benchmark::DoNotOptimize(orchestrator.solve(b, x, req).converged());
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ServeColdInline)->MeasureProcessCPUTime()->UseRealTime();

// ---- traffic mix: cold start, skewed popularity ---------------------------

void BM_ServeTrafficMix(benchmark::State& state) {
  const std::vector<CsrMatrix> mats = bench_matrices();
  constexpr int kRequests = 24;
  std::vector<real_t> latencies_ms;
  double hit_rate = 0.0;

  for (auto _ : state) {
    SolveService service(bench_service_options());
    Xoshiro256 rng = make_stream(42);
    // Two waves: the first hits the service cold (fallback rungs while the
    // builds run); the drain lets the swap-ins land; the second wave sees
    // the warm store.  hit_rate over both waves is the cold-start curve.
    for (int wave = 0; wave < 2; ++wave) {
      std::vector<ServeHandle> handles;
      handles.reserve(kRequests);
      for (int i = 0; i < kRequests; ++i) {
        // Skewed popularity: 60% / 30% / 10% over the three fingerprints.
        const real_t u = uniform01(rng);
        const std::size_t pick = u < 0.6 ? 0 : (u < 0.9 ? 1 : 2);
        const CsrMatrix& a = mats[pick];
        handles.push_back(
            service.submit(a, random_rhs(a.rows(), static_cast<u64>(i))));
      }
      for (const ServeHandle& h : handles) {
        latencies_ms.push_back(h.wait().total_seconds * 1e3);
      }
      service.drain();
    }
    const ServiceStats stats = service.stats();
    hit_rate = static_cast<double>(stats.warm_requests) /
               static_cast<double>(
                   std::max<u64>(stats.warm_requests + stats.cold_requests,
                                 1));
  }
  state.SetItemsProcessed(state.iterations() * 2 * kRequests);

  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto percentile = [&](double q) {
    if (latencies_ms.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(latencies_ms.size() - 1));
    return static_cast<double>(latencies_ms[idx]);
  };
  state.counters["p50_ms"] = percentile(0.50);
  state.counters["p95_ms"] = percentile(0.95);
  state.counters["p99_ms"] = percentile(0.99);
  state.counters["hit_rate"] = hit_rate;
}
BENCHMARK(BM_ServeTrafficMix)->MeasureProcessCPUTime()->UseRealTime();

}  // namespace

#define MCMI_BENCH_DEFAULT_JSON "BENCH_serve_traffic.json"
#include "json_main.hpp"
