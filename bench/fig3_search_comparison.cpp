// Regenerates Figure 3: box plot of the sample medians of y(A, x_M) over the
// explored parameter vectors for each search strategy, plus the observation
// distribution at each strategy's best x_M*.
//
// Paper shape: with only 50% of the evaluation budget (32 recommendations vs
// 64 grid points), the BO-enhanced recommendations reduce the steps to
// convergence by up to ~25%, about 10% below the grid-search optimum.

#include <cstdio>
#include <iostream>

#include "core/table.hpp"
#include "experiment_cache.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace mcmi;
  const ExperimentResults r = bench::run_or_load_experiment("fig3");

  std::printf("== Figure 3: search-strategy comparison on the unseen matrix "
              "(baseline %lld steps) ==\n",
              static_cast<long long>(r.baseline_steps));

  TextTable table({"strategy", "budget", "min", "q1", "median", "q3", "max",
                   "best median y", "best x_M (alpha,eps,delta)"});
  auto add_strategy = [&](const StrategyResult& s) {
    const std::vector<real_t> medians = s.medians();
    const BoxStats box = box_stats(medians);
    const index_t best = s.best_index();
    const McmcParams& p = s.evaluated[best].params;
    table.add_row({
        s.name,
        TextTable::fmt(static_cast<index_t>(s.evaluated.size())),
        TextTable::fmt(box.minimum, 4),
        TextTable::fmt(box.q1, 4),
        TextTable::fmt(box.median, 4),
        TextTable::fmt(box.q3, 4),
        TextTable::fmt(box.maximum, 4),
        TextTable::fmt(medians[best], 4),
        "(" + TextTable::fmt(p.alpha, 2) + ", " + TextTable::fmt(p.eps, 3) +
            ", " + TextTable::fmt(p.delta, 3) + ")",
    });
  };
  add_strategy(r.grid_strategy);
  add_strategy(r.balanced_strategy);
  add_strategy(r.explore_strategy);
  table.print(std::cout);
  table.write_csv("fig3_search_comparison.csv");

  // Observation scatter at each strategy's best x_M (the coloured circles).
  std::printf("\nobservations y(A, x_M*) at each strategy's best point:\n");
  auto print_best_obs = [&](const StrategyResult& s) {
    const GridObservation& g = s.evaluated[s.best_index()];
    std::printf("  %-26s :", s.name.c_str());
    for (real_t y : g.ys) std::printf(" %.4f", y);
    std::printf("\n");
  };
  print_best_obs(r.grid_strategy);
  print_best_obs(r.balanced_strategy);
  print_best_obs(r.explore_strategy);

  const real_t grid_best =
      r.grid_strategy.medians()[r.grid_strategy.best_index()];
  const real_t bal_best =
      r.balanced_strategy.medians()[r.balanced_strategy.best_index()];
  const real_t exp_best =
      r.explore_strategy.medians()[r.explore_strategy.best_index()];
  const real_t bo_best = std::min(bal_best, exp_best);
  std::printf("\nheadline: BO at 50%% budget reaches y=%.4f vs grid y=%.4f "
              "(%+.1f%% steps relative to grid optimum)\n",
              bo_best, grid_best, 100.0 * (bo_best - grid_best) / grid_best);
  std::printf("[fig3] CSV written to fig3_search_comparison.csv\n");
  return 0;
}
