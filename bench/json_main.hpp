#pragma once
// Shared main() for the google-benchmark binaries: BENCHMARK_MAIN plus a
// --json[=path] convenience flag that maps onto google-benchmark's native
// --benchmark_out so results land in a BENCH_*.json for cross-PR perf
// tracking.  The including .cpp defines MCMI_BENCH_DEFAULT_JSON to name
// the bare --json default before including this header.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#ifndef MCMI_BENCH_DEFAULT_JSON
#error "define MCMI_BENCH_DEFAULT_JSON before including json_main.hpp"
#endif

int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  std::string out_path;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--json") {
      out_path = MCMI_BENCH_DEFAULT_JSON;
      it = args.erase(it);
    } else if (it->rfind("--json=", 0) == 0) {
      out_path = it->substr(7);
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (!out_path.empty()) {
    args.push_back("--benchmark_out=" + out_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& s : args) argv2.push_back(s.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
