// Surrogate and acquisition ablations:
//   (a) message-passing mechanism x aggregation on a fixed dataset — the
//       §4.3 architecture comparison in miniature;
//   (b) EI exploration parameter xi sweep — how the recommended batch
//       shifts from exploitation (xi=0) to exploration (xi=1).

#include <cstdio>
#include <iostream>

#include "bo/recommender.hpp"
#include "core/env.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"
#include "pipeline/dataset_builder.hpp"
#include "stats/summary.hpp"
#include "surrogate/trainer.hpp"

int main() {
  using namespace mcmi;
  const index_t epochs = env_int("MCMI_EPOCHS", 15);

  DatasetBuildOptions data;
  data.replicates = 2;
  WallTimer timer;
  const SurrogateDataset dataset =
      build_dataset(training_matrix_set(300), data);
  std::vector<LabeledSample> train, validation;
  dataset.split(0.2, 13, train, validation);
  std::printf("== Surrogate ablations (%lld samples, %lld epochs) ==\n",
              static_cast<long long>(dataset.size()),
              static_cast<long long>(epochs));

  // (a) layer kind x aggregation.
  {
    TextTable t({"layer", "aggregation", "val loss", "val rmse", "secs"});
    for (gnn::LayerKind kind :
         {gnn::LayerKind::kEdgeConv, gnn::LayerKind::kGine,
          gnn::LayerKind::kGcn}) {
      for (gnn::Aggregation agg :
           {gnn::Aggregation::kMean, gnn::Aggregation::kMax,
            gnn::Aggregation::kMulti}) {
        SurrogateConfig config = default_config();
        config.gnn.kind = kind;
        config.gnn.aggregation = agg;
        SurrogateModel model(config);
        model.fit_standardizers(dataset);
        TrainOptions options;
        options.epochs = epochs;
        WallTimer fit_timer;
        const TrainReport report =
            train_surrogate(model, dataset, train, validation, options);
        t.add_row({gnn::layer_kind_name(kind), gnn::aggregation_name(agg),
                   TextTable::fmt(report.best_validation_loss, 4),
                   TextTable::fmt(evaluate_rmse(model, dataset, validation), 4),
                   TextTable::fmt(fit_timer.seconds(), 1)});
      }
    }
    std::printf("\n-- (a) architecture comparison (paper's HPO selected "
                "edgeconv/mean) --\n");
    t.print(std::cout);
    t.write_csv("ablation_surrogate_arch.csv");
  }

  // (b) xi sweep on the recommended batch.
  {
    SurrogateModel model(default_config());
    model.fit_standardizers(dataset);
    TrainOptions options;
    options.epochs = epochs;
    train_surrogate(model, dataset, train, validation, options);
    model.cache_matrix(dataset.graphs[0], dataset.features[0]);

    real_t y_min = 1e9;
    for (const LabeledSample& s : dataset.samples) {
      y_min = std::min(y_min, s.y_mean);
    }
    McmcSearchSpace space;
    TextTable t({"xi", "mean predicted mu of batch",
                 "mean predicted sigma of batch", "batch spread (std of eps)"});
    for (real_t xi : {0.0, 0.05, 0.2, 0.5, 1.0}) {
      RecommendOptions rec;
      rec.batch_size = 16;
      rec.xi = xi;
      rec.y_min = y_min;
      const auto batch =
          recommend_batch(model, KrylovMethod::kGMRES, space, rec);
      std::vector<real_t> mus, sigmas, epss;
      for (const Recommendation& r : batch) {
        mus.push_back(r.prediction.mu);
        sigmas.push_back(r.prediction.sigma);
        epss.push_back(r.params.eps);
      }
      t.add_row({TextTable::fmt(xi, 2), TextTable::fmt(mean(mus), 4),
                 TextTable::fmt(mean(sigmas), 4),
                 TextTable::fmt(sample_std(epss), 4)});
    }
    std::printf("\n-- (b) EI exploration parameter xi (0 = exploit, 1 = "
                "explore; paper tests 0.05 and 1.0) --\n");
    t.print(std::cout);
    t.write_csv("ablation_surrogate_xi.csv");
  }
  std::printf("\n[ablation] total %.1f s\n", timer.seconds());
  return 0;
}
