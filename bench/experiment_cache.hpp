#pragma once
// Shared experiment runner for the figure benches.
//
// Figures 1, 2 and 3 are three views of the same §4.4 experiment.  The first
// bench binary to run executes the pipeline and serialises the results; the
// other two load the cache (validated against the experiment fingerprint) so
// `for b in build/bench/*; do $b; done` pays the pipeline cost once.
// Set MCMI_CACHE to change the cache path; delete the file to force a rerun.

#include <string>

#include "pipeline/experiment.hpp"

namespace mcmi::bench {

/// The experiment configuration used by all figure benches (honours
/// MCMI_FULL / MCMI_REPLICATES / MCMI_EPOCHS).
ExperimentOptions figure_experiment_options();

/// Run the experiment or load it from the cache.  `label` is printed in the
/// progress banner.
ExperimentResults run_or_load_experiment(const std::string& label);

}  // namespace mcmi::bench
