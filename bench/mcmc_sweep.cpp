// §4.1 behaviour study: the performance metric y(A, x_M) swept over the
// (eps, delta) grid for each alpha on one matrix, printed as heatmaps.
//
// Paper observations to reproduce (discussion of Figure 2):
//   * eps and delta do NOT contribute symmetrically: given delta, success
//     requires eps <~ delta, more pronounced at larger alpha;
//   * for fixed eps, larger delta (shorter chains) is preferable;
//   * no notable reductions for eps, delta << eps* ~ delta*.

#include <cstdio>
#include <iostream>

#include "core/env.hpp"
#include "core/table.hpp"
#include "gen/matrix_set.hpp"
#include "mcmc/batched_build.hpp"
#include "mcmc/params.hpp"
#include "pipeline/metric.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace mcmi;
  const std::string name =
      env_string("MCMI_SWEEP_MATRIX", "unsteady_adv_diff_order1_0001");
  const index_t replicates = env_int("MCMI_REPLICATES", full_scale() ? 10 : 3);
  const NamedMatrix nm = make_matrix(name, full_scale());

  SolveOptions solve;
  solve.restart = 250;
  solve.max_iterations = 4000;
  PerformanceMeasurer measurer(nm.matrix, solve);
  const index_t baseline = measurer.baseline_steps(KrylovMethod::kGMRES);

  std::printf("== MCMC preconditioning sweep on %s (n=%lld, GMRES baseline "
              "%lld steps, %lld replicates) ==\n",
              name.c_str(), static_cast<long long>(nm.matrix.rows()),
              static_cast<long long>(baseline),
              static_cast<long long>(replicates));

  const std::vector<real_t> eps_values = paper_eps_values();
  TextTable csv({"alpha", "eps", "delta", "median_y", "mean_y", "std_y"});
  for (real_t alpha : paper_alpha_values()) {
    TextTable table({"alpha=" + TextTable::fmt(alpha, 2) + "  eps\\delta",
                     TextTable::fmt(eps_values[0], 4),
                     TextTable::fmt(eps_values[1], 4),
                     TextTable::fmt(eps_values[2], 4),
                     TextTable::fmt(eps_values[3], 4)});
    // The whole per-alpha heatmap shares one interleaved walk ensemble
    // across all 16 trials AND all replicates (trials differ only in chain
    // count and truncation; replicates only in their stream seeds): a
    // single measure_grid_replicates call replaces 16 x replicates
    // per-trial builds.
    std::vector<GridTrial> trials;
    for (real_t eps : eps_values) {
      for (real_t delta : eps_values) trials.push_back({eps, delta});
    }
    const std::vector<std::vector<real_t>> all_ys =
        measurer.measure_grid_replicates(alpha, trials, KrylovMethod::kGMRES,
                                         replicates);
    std::size_t t = 0;
    for (real_t eps : eps_values) {
      std::vector<std::string> row = {TextTable::fmt(eps, 4)};
      for (real_t delta : eps_values) {
        const std::vector<real_t>& ys = all_ys[t++];
        const real_t med = median(ys);
        row.push_back(TextTable::fmt(med, 3));
        csv.add_row({TextTable::fmt(alpha, 2), TextTable::fmt(eps, 4),
                     TextTable::fmt(delta, 4), TextTable::fmt(med, 5),
                     TextTable::fmt(mean(ys), 5),
                     TextTable::fmt(sample_std(ys), 5)});
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::printf("\n");
  }
  csv.write_csv("mcmc_sweep.csv");
  std::printf("[sweep] median y < 1 marks configurations where the MCMC "
              "preconditioner reduces Krylov steps (eq. 4)\n");
  std::printf("[sweep] CSV written to mcmc_sweep.csv\n");
  return 0;
}
