// Regenerates the §4.2 training-dataset construction: the 4x4x4 parameter
// grid executed with GMRES and BiCGStab on each training matrix (plus CG at
// alpha = 0.1 for the SPD Laplacians and near-zero-alpha divergence probes),
// reporting per-matrix label statistics.  The paper's full dataset holds
// 1318 labelled points over 11 matrices; the reduced default covers the
// small-matrix subset at lower replication (MCMI_FULL=1 / MCMI_REPLICATES
// restore the paper scale).

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/env.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"
#include "pipeline/dataset_builder.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace mcmi;
  DatasetBuildOptions options;
  options.replicates = env_int("MCMI_REPLICATES", full_scale() ? 10 : 3);
  const index_t max_dim = env_int("MCMI_MAX_DIM", full_scale() ? 4000 : 1100);

  std::printf("== §4.2 dataset: 4x4x4 grid x %lld replicates, GMRES + "
              "BiCGStab (matrices up to n=%lld) ==\n",
              static_cast<long long>(options.replicates),
              static_cast<long long>(max_dim));

  WallTimer timer;
  const std::vector<NamedMatrix> matrices = training_matrix_set(max_dim);
  const SurrogateDataset dataset = build_dataset(matrices, options);

  TextTable table({"matrix", "n", "samples", "mean y", "min y", "max y",
                   "share y<1 (preconditioning helps)"});
  for (index_t id = 0; id < dataset.num_matrices(); ++id) {
    std::vector<real_t> ys;
    for (const LabeledSample& s : dataset.samples) {
      if (s.matrix_id == id) ys.push_back(s.y_mean);
    }
    if (ys.empty()) continue;
    index_t below_one = 0;
    for (real_t y : ys) below_one += y < 1.0 ? 1 : 0;
    table.add_row({
        dataset.matrix_names[id],
        TextTable::fmt(dataset.graphs[id].num_nodes),
        TextTable::fmt(static_cast<index_t>(ys.size())),
        TextTable::fmt(mean(ys), 4),
        TextTable::fmt(*std::min_element(ys.begin(), ys.end()), 4),
        TextTable::fmt(*std::max_element(ys.begin(), ys.end()), 4),
        TextTable::fmt(static_cast<real_t>(below_one) /
                           static_cast<real_t>(ys.size()),
                       3),
    });
  }
  table.print(std::cout);

  std::printf("\ntotal labelled points: %lld (paper: 1318 at full scale); "
              "built in %.1f s\n",
              static_cast<long long>(dataset.size()), timer.seconds());

  // CSV of every labelled sample for downstream analysis.
  TextTable csv({"matrix", "alpha", "eps", "delta", "solver", "y_mean",
                 "y_std"});
  for (const LabeledSample& s : dataset.samples) {
    const char* solver = s.xm[3] > 0.5 ? "cg" : s.xm[4] > 0.5 ? "gmres"
                                                              : "bicgstab";
    csv.add_row({dataset.matrix_names[s.matrix_id],
                 TextTable::fmt(s.xm[0], 3), TextTable::fmt(s.xm[1], 4),
                 TextTable::fmt(s.xm[2], 4), solver,
                 TextTable::fmt(s.y_mean, 5), TextTable::fmt(s.y_std, 5)});
  }
  csv.write_csv("dataset_grid.csv");
  std::printf("[dataset] CSV written to dataset_grid.csv\n");
  return 0;
}
