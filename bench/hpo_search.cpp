// §4.3 hyper-parameter optimisation: TPE over the surrogate search space
// (message-passing mechanism, aggregation, widths, depths, learning rate,
// weight decay, dropout) with ASHA early stopping.
//
// The paper launches 30 trials with a maximum of 150 epochs, a grace period
// of 20 and reduction factor 3 on a V100; the reduced default uses a small
// trial budget on a compact dataset so the bench stays CPU-friendly
// (MCMI_HPO_TRIALS / MCMI_FULL rescale it).

#include <cstdio>
#include <iostream>

#include "core/env.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"
#include "hpo/asha.hpp"
#include "hpo/tpe.hpp"
#include "pipeline/dataset_builder.hpp"
#include "surrogate/trainer.hpp"

namespace {

using namespace mcmi;

/// Translate an HPO assignment into a surrogate configuration.
SurrogateConfig config_from_assignment(const hpo::SearchSpace& space,
                                       const hpo::Assignment& a) {
  auto value = [&](const char* name) {
    return a[space.index_of(name)];
  };
  auto choice = [&](const char* name) {
    const hpo::ParamSpec& spec = space.params[space.index_of(name)];
    return spec.choices[static_cast<std::size_t>(std::llround(value(name)))];
  };
  SurrogateConfig c;
  const auto& layer_spec = space.params[space.index_of("layer")];
  c.gnn.kind = gnn::parse_layer_kind(
      layer_spec.labels[static_cast<std::size_t>(std::llround(value("layer")))]);
  const auto& agg_spec = space.params[space.index_of("aggregation")];
  c.gnn.aggregation = gnn::parse_aggregation(
      agg_spec.labels[static_cast<std::size_t>(
          std::llround(value("aggregation")))]);
  c.gnn.hidden = static_cast<index_t>(choice("gnn_hidden"));
  c.gnn.layers = static_cast<index_t>(choice("gnn_layers"));
  c.xa_hidden = static_cast<index_t>(choice("xa_hidden"));
  c.xa_layers = static_cast<index_t>(choice("xa_layers"));
  c.xm_hidden = static_cast<index_t>(choice("xm_hidden"));
  c.xm_layers = static_cast<index_t>(choice("xm_layers"));
  c.combined_hidden = static_cast<index_t>(choice("combined_hidden"));
  c.combined_layers = static_cast<index_t>(choice("combined_layers"));
  c.dropout = value("dropout");
  return c;
}

}  // namespace

int main() {
  using namespace mcmi;
  const index_t trials =
      env_int("MCMI_HPO_TRIALS", full_scale() ? 30 : 6);
  const index_t max_epochs =
      env_int("MCMI_HPO_EPOCHS", full_scale() ? 150 : 12);

  std::printf("== §4.3 HPO: TPE + ASHA over the surrogate space (%lld "
              "trials, <=%lld epochs) ==\n",
              static_cast<long long>(trials),
              static_cast<long long>(max_epochs));

  // Compact dataset: small matrices, single-digit replication.
  DatasetBuildOptions data;
  data.replicates = 2;
  WallTimer timer;
  const SurrogateDataset dataset =
      build_dataset(training_matrix_set(300), data);
  std::printf("[hpo] dataset: %lld samples in %.1f s\n",
              static_cast<long long>(dataset.size()), timer.seconds());

  const hpo::SearchSpace space = hpo::surrogate_search_space();
  hpo::TpeOptions tpe_options;
  tpe_options.startup_trials = std::max<index_t>(2, trials / 3);
  hpo::TpeSampler sampler(space, tpe_options);
  hpo::AshaOptions asha_options;
  asha_options.grace_period = std::max<index_t>(2, max_epochs / 6);
  asha_options.max_resource = max_epochs;
  hpo::AshaScheduler asha(asha_options);

  TextTable table({"trial", "layer", "agg", "gnn", "lr", "dropout", "epochs",
                   "val loss", "stopped"});
  for (index_t t = 0; t < trials; ++t) {
    const hpo::Assignment assignment = sampler.suggest();
    const SurrogateConfig config = config_from_assignment(space, assignment);

    SurrogateModel model(config);
    model.fit_standardizers(dataset);
    std::vector<LabeledSample> train, validation;
    dataset.split(0.2, 17, train, validation);

    bool pruned = false;
    TrainOptions train_options;
    train_options.epochs = max_epochs;
    train_options.learning_rate = assignment[space.index_of("learning_rate")];
    train_options.weight_decay = assignment[space.index_of("weight_decay")];
    train_options.on_epoch = [&](index_t epoch, real_t, real_t val) {
      const bool keep = asha.report(t, epoch + 1, val);
      pruned = !keep;
      return keep;
    };
    const TrainReport report =
        train_surrogate(model, dataset, train, validation, train_options);
    sampler.record(assignment, report.best_validation_loss);

    table.add_row({
        TextTable::fmt(t),
        gnn::layer_kind_name(config.gnn.kind),
        gnn::aggregation_name(config.gnn.aggregation),
        TextTable::fmt(config.gnn.hidden),
        TextTable::sci(train_options.learning_rate, 2),
        TextTable::fmt(config.dropout, 3),
        TextTable::fmt(report.epochs_run),
        TextTable::fmt(report.best_validation_loss, 4),
        pruned ? "asha" : "-",
    });
  }
  table.print(std::cout);
  table.write_csv("hpo_search.csv");

  const hpo::TrialRecord& best = sampler.best();
  const SurrogateConfig best_config = config_from_assignment(space,
                                                             best.assignment);
  std::printf("\nbest trial: val loss %.4f with %s/%s hidden=%lld lr=%.2e "
              "(paper selected edgeconv/mean hidden=256 lr=1.85e-3)\n",
              best.objective, gnn::layer_kind_name(best_config.gnn.kind).c_str(),
              gnn::aggregation_name(best_config.gnn.aggregation).c_str(),
              static_cast<long long>(best_config.gnn.hidden),
              best.assignment[space.index_of("learning_rate")]);
  std::printf("[hpo] total %.1f s; CSV written to hpo_search.csv\n",
              timer.seconds());
  return 0;
}
