// Google-benchmark micro-kernels: the per-operation costs underlying every
// experiment — SpMV, MCMC preconditioner builds, Krylov solves, GNN
// forward/backward, EI evaluation and L-BFGS-B runs.

#include <benchmark/benchmark.h>

#include "bo/expected_improvement.hpp"
#include "bo/lbfgsb.hpp"
#include "features/matrix_features.hpp"
#include "gen/laplace.hpp"
#include "gen/plasma.hpp"
#include "gnn/stack.hpp"
#include "krylov/solver.hpp"
#include "mcmc/inverter.hpp"
#include "mcmc/regenerative.hpp"
#include "precond/ilu0.hpp"
#include "surrogate/model.hpp"

namespace {

using namespace mcmi;

void BM_SpMV(benchmark::State& state) {
  const CsrMatrix a = laplace_2d(state.range(0));
  std::vector<real_t> x(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<real_t> y;
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpMV)->Arg(32)->Arg(64)->Arg(128);

void BM_McmcBuild(benchmark::State& state) {
  const CsrMatrix a = laplace_2d(32);
  const real_t eps = 1.0 / static_cast<real_t>(state.range(0));
  for (auto _ : state) {
    McmcInverter inverter(a, {1.0, eps, 0.0625});
    benchmark::DoNotOptimize(inverter.compute().nnz());
  }
}
BENCHMARK(BM_McmcBuild)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_RegenerativeBuild(benchmark::State& state) {
  const CsrMatrix a = laplace_2d(32);
  for (auto _ : state) {
    RegenerativeInverter inverter(a,
                                  {1.0, static_cast<index_t>(state.range(0))});
    benchmark::DoNotOptimize(inverter.compute().nnz());
  }
}
BENCHMARK(BM_RegenerativeBuild)->Arg(32)->Arg(128);

void BM_WalkThroughput(benchmark::State& state) {
  // Transitions per second of the sampler at a fixed configuration.
  const CsrMatrix a = plasma_a00512();
  index_t transitions = 0;
  for (auto _ : state) {
    McmcInverter inverter(a, {1.0, 0.125, 0.03125});
    benchmark::DoNotOptimize(inverter.compute().nnz());
    transitions += inverter.info().total_transitions;
  }
  state.SetItemsProcessed(transitions);
}
BENCHMARK(BM_WalkThroughput);

void BM_GmresSolve(benchmark::State& state) {
  const CsrMatrix a = laplace_2d(48);
  std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  IdentityPreconditioner id;
  SolveOptions opt;
  opt.restart = 250;
  for (auto _ : state) {
    std::vector<real_t> x;
    benchmark::DoNotOptimize(solve_gmres(a, b, id, x, opt).iterations);
  }
}
BENCHMARK(BM_GmresSolve);

void BM_Ilu0Factorise(benchmark::State& state) {
  const CsrMatrix a = laplace_2d(64);
  for (auto _ : state) {
    Ilu0Preconditioner ilu(a);
    benchmark::DoNotOptimize(&ilu);
  }
}
BENCHMARK(BM_Ilu0Factorise);

void BM_FeatureExtraction(benchmark::State& state) {
  const CsrMatrix a = plasma_a00512();
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_features(a).to_vector().data());
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_GnnForward(benchmark::State& state) {
  const gnn::Graph g = gnn::Graph::from_csr(laplace_2d(32));
  gnn::GnnConfig config;
  config.hidden = static_cast<index_t>(state.range(0));
  gnn::GnnStack stack(config, 1, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.forward(g, false).data().data());
  }
}
BENCHMARK(BM_GnnForward)->Arg(16)->Arg(64);

void BM_GnnBackward(benchmark::State& state) {
  const gnn::Graph g = gnn::Graph::from_csr(laplace_2d(32));
  gnn::GnnConfig config;
  config.hidden = 32;
  gnn::GnnStack stack(config, 1, 7);
  nn::Tensor grad(1, 32, 1.0);
  for (auto _ : state) {
    stack.forward(g, true);
    stack.backward(g, grad);
  }
}
BENCHMARK(BM_GnnBackward);

void BM_ExpectedImprovement(benchmark::State& state) {
  const EiContext ctx{0.8, 0.05};
  real_t mu = 0.7;
  for (auto _ : state) {
    mu += 1e-9;
    benchmark::DoNotOptimize(expected_improvement(mu, 0.3, ctx));
  }
}
BENCHMARK(BM_ExpectedImprovement);

void BM_LbfgsbRosenbrock(benchmark::State& state) {
  Bounds bounds{{-2.0, -2.0}, {2.0, 2.0}};
  auto f = [](const std::vector<real_t>& x, std::vector<real_t>& g) {
    const real_t a = 1.0 - x[0];
    const real_t b = x[1] - x[0] * x[0];
    g = {-2.0 * a - 400.0 * x[0] * b, 200.0 * b};
    return a * a + 100.0 * b * b;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimize_lbfgsb(f, {-1.2, 1.0}, bounds).value);
  }
}
BENCHMARK(BM_LbfgsbRosenbrock);

}  // namespace

BENCHMARK_MAIN();
