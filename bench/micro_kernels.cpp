// Google-benchmark micro-kernels: the per-operation costs underlying every
// experiment — transition sampling, SpMV, MCMC preconditioner builds, Krylov
// solves, GNN forward/backward, EI evaluation and L-BFGS-B runs.
//
// Run with --json[=path] to mirror the report into a JSON file (default
// BENCH_micro_kernels.json) so the perf trajectory is comparable across PRs.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bo/expected_improvement.hpp"
#include "bo/lbfgsb.hpp"
#include "core/rng.hpp"
#include "features/matrix_features.hpp"
#include "gen/laplace.hpp"
#include "gen/plasma.hpp"
#include "gnn/stack.hpp"
#include "krylov/solver.hpp"
#include "mcmc/batched_build.hpp"
#include "mcmc/csr_arena.hpp"
#include "mcmc/emission.hpp"
#include "mcmc/inverter.hpp"
#include "mcmc/regenerative.hpp"
#include "mcmc/walk_kernel.hpp"
#include "precond/ilu0.hpp"
#include "solve/orchestrator.hpp"
#include "sparse/vector_ops.hpp"
#include "surrogate/model.hpp"

namespace {

using namespace mcmi;

// ---- transition sampling: alias table vs binary search ----------------------
// The same random walk over the iteration matrix of a 64x64 Laplacian,
// differing only in the successor draw.  items/s = transitions/s.

void BM_AliasSample(benchmark::State& state) {
  const CsrMatrix a = laplace_2d(64);
  const WalkKernel k = build_walk_kernel(a, 1.0);
  Xoshiro256 rng = make_stream(7, 1);
  index_t s = 0;
  for (auto _ : state) {
    const index_t begin = k.row_ptr[s];
    const index_t end = k.row_ptr[s + 1];
    const index_t p = k.alias.sample(begin, end, rng());
    s = k.succ[p];
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasSample);

void BM_InverseCdfSample(benchmark::State& state) {
  const CsrMatrix a = laplace_2d(64);
  const WalkKernel k = build_walk_kernel(a, 1.0);
  Xoshiro256 rng = make_stream(7, 1);
  index_t s = 0;
  for (auto _ : state) {
    const index_t begin = k.row_ptr[s];
    const index_t end = k.row_ptr[s + 1];
    const real_t target = uniform01(rng) * k.row_sum[s];
    const auto first = k.cum_abs.begin() + begin;
    const auto last = k.cum_abs.begin() + end;
    auto it = std::upper_bound(first, last, target);
    if (it == last) --it;
    s = k.succ[static_cast<index_t>(it - k.cum_abs.begin())];
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InverseCdfSample);

void BM_AliasTableBuild(benchmark::State& state) {
  const CsrMatrix a = laplace_2d(state.range(0));
  const WalkKernel k = build_walk_kernel(a, 1.0);
  std::vector<real_t> abs_value(k.value.size());
  for (std::size_t p = 0; p < abs_value.size(); ++p) {
    abs_value[p] = std::abs(k.value[p]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        AliasTable::build(k.row_ptr, abs_value).prob().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<index_t>(abs_value.size()));
}
BENCHMARK(BM_AliasTableBuild)->Arg(64)->Arg(128);

// ---- SpMV: naive row loop vs the cached execution plan ----------------------
// The naive kernel replicates the seed implementation: zero-fill pass plus a
// statically scheduled row loop over 64-bit column indices.  The plan path
// (CsrMatrix::multiply) runs the nnz-balanced chunks with 32-bit columns and
// no zero fill.  items/s = nonzeros/s.

void naive_spmv(const CsrMatrix& a, const std::vector<real_t>& x,
                std::vector<real_t>& y) {
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  y.assign(static_cast<std::size_t>(a.rows()), 0.0);
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.rows(); ++i) {
    real_t sum = 0.0;
    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      sum += values[k] * x[col_idx[k]];
    }
    y[i] = sum;
  }
}

void BM_SpmvNaive(benchmark::State& state) {
  const CsrMatrix a = laplace_2d(state.range(0));
  std::vector<real_t> x(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<real_t> y;
  for (auto _ : state) {
    naive_spmv(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpmvNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_SpmvPlan(benchmark::State& state) {
  const CsrMatrix a = laplace_2d(state.range(0));
  std::vector<real_t> x(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<real_t> y;
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpmvPlan)->Arg(64)->Arg(128)->Arg(256);

void BM_SpmvPlanFusedDot(benchmark::State& state) {
  // The CG q·Aq shape: product and reduction in one pass.
  const CsrMatrix a = laplace_2d(state.range(0));
  std::vector<real_t> x(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<real_t> y;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.multiply_dot(x, y));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpmvPlanFusedDot)->Arg(128)->Arg(256);

// ---- CG inner loop: unfused seed kernels vs the plan-based fused path -------
// Both run exactly 50 preconditioned-CG iterations on the 256x256 Laplace
// system with an MCMC approximate inverse, so items/s = CG iterations/s and
// the ratio isolates the per-iteration kernel cost (the acceptance metric of
// the SpmvPlan rewrite).

constexpr index_t kCgBenchIters = 50;

const CsrMatrix& cg_bench_matrix() {
  static const CsrMatrix a = laplace_2d(256);
  return a;
}

const CsrMatrix& cg_bench_precond() {
  static const CsrMatrix p =
      McmcInverter(cg_bench_matrix(), {1.0, 0.25, 0.125}).compute();
  return p;
}

void BM_CgIterationNaive(benchmark::State& state) {
  const CsrMatrix& a = cg_bench_matrix();
  const CsrMatrix& pm = cg_bench_precond();
  const std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<real_t> x, r, z, q, aq;
  for (auto _ : state) {
    x.assign(b.size(), 0.0);
    r = b;
    naive_spmv(pm, r, z);
    real_t rho = dot(r, z);
    q = z;
    for (index_t it = 0; it < kCgBenchIters; ++it) {
      naive_spmv(a, q, aq);
      const real_t alpha = rho / dot(q, aq);
      axpy2(alpha, q, aq, x, r);
      naive_spmv(pm, r, z);
      real_t rho_next, norm_z;
      dot_norm2(r, z, rho_next, norm_z);
      benchmark::DoNotOptimize(norm_z);
      const real_t beta = rho_next / rho;
      rho = rho_next;
      xpby(z, beta, q);
    }
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * kCgBenchIters);
}
BENCHMARK(BM_CgIterationNaive)->Unit(benchmark::kMillisecond);

void BM_CgIterationPlan(benchmark::State& state) {
  const CsrMatrix& a = cg_bench_matrix();
  const CsrMatrix& pm = cg_bench_precond();
  const std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<real_t> x, r, z, q, aq;
  for (auto _ : state) {
    x.assign(b.size(), 0.0);
    r = b;
    real_t rho, norm_sq;
    pm.multiply_dot_norm2(r, z, r, rho, norm_sq);
    q = z;
    for (index_t it = 0; it < kCgBenchIters; ++it) {
      const real_t alpha = rho / a.multiply_dot(q, aq);
      axpy2(alpha, q, aq, x, r);
      real_t rho_next;
      pm.multiply_dot_norm2(r, z, r, rho_next, norm_sq);
      benchmark::DoNotOptimize(norm_sq);
      const real_t beta = rho_next / rho;
      rho = rho_next;
      xpby(z, beta, q);
    }
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * kCgBenchIters);
}
BENCHMARK(BM_CgIterationPlan)->Unit(benchmark::kMillisecond);

// The fused-recurrence CG iteration: the descent step (A q, <q,Aq>, x/r
// update) and the preconditioner tail (P r, <r,z>, ||z||^2, q recurrence)
// each collapse into one parallel region via multiply_dot_axpy2 /
// multiply_dot_norm2_xpby — two operator visits per iteration, zero
// standalone vector sweeps.  Same system, same 50 iterations, identical
// items as BM_CgIterationPlan.  The gated pair pins fusion at parity-or-
// better: single-core the iteration is bandwidth-bound and the phases are
// additive, so the measured win is ~1%; the fork/join and partial-sum
// locality savings only open up with real thread counts.  The gate exists
// so the fused path can never silently become *slower* than the composed
// PR 2 loop it replaced in cg.cpp.
void BM_CgIterationFusedRecurrence(benchmark::State& state) {
  const CsrMatrix& a = cg_bench_matrix();
  const CsrMatrix& pm = cg_bench_precond();
  const std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<real_t> x, r, z, q, aq;
  for (auto _ : state) {
    x.assign(b.size(), 0.0);
    r = b;
    real_t rho, norm_sq;
    pm.multiply_dot_norm2(r, z, r, rho, norm_sq);
    q = z;
    for (index_t it = 0; it < kCgBenchIters; ++it) {
      benchmark::DoNotOptimize(a.multiply_dot_axpy2(q, rho, aq, x, r));
      real_t rho_next;
      pm.multiply_dot_norm2_xpby(r, z, r, rho, q, rho_next, norm_sq);
      benchmark::DoNotOptimize(norm_sq);
      rho = rho_next;
    }
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * kCgBenchIters);
}
BENCHMARK(BM_CgIterationFusedRecurrence)->Unit(benchmark::kMillisecond);

// Args: {grid side, 1/eps, sampling method}.  The {128, 16} rows are the
// acceptance benchmark of the alias rewrite: a 128x128 2-D Laplace build at
// eps = 1/16 with the alias path (method 0) versus the pre-PR binary-search
// path (method 1).
void BM_McmcBuild(benchmark::State& state) {
  const CsrMatrix a = laplace_2d(state.range(0));
  const real_t eps = 1.0 / static_cast<real_t>(state.range(1));
  McmcOptions opt;
  opt.sampling = state.range(2) == 0 ? SamplingMethod::kAlias
                                     : SamplingMethod::kInverseCdf;
  long long transitions = 0;
  for (auto _ : state) {
    McmcInverter inverter(a, {1.0, eps, 0.0625}, opt);
    benchmark::DoNotOptimize(inverter.compute().nnz());
    transitions += inverter.info().total_transitions;
  }
  state.SetItemsProcessed(transitions);
}
BENCHMARK(BM_McmcBuild)
    ->Args({32, 2, 0})
    ->Args({32, 4, 0})
    ->Args({32, 8, 0})
    ->Args({32, 16, 0})
    ->Args({128, 16, 0})
    ->Args({128, 16, 1})
    ->Unit(benchmark::kMillisecond);

void BM_McmcBuildCachedKernel(benchmark::State& state) {
  // The HPO-loop shape: repeated builds against one matrix sharing alpha.
  const CsrMatrix a = laplace_2d(64);
  WalkKernelCache cache;
  for (auto _ : state) {
    McmcInverter inverter(a, {1.0, 0.125, 0.0625});
    inverter.set_kernel_cache(&cache);
    benchmark::DoNotOptimize(inverter.compute().nnz());
  }
}
BENCHMARK(BM_McmcBuildCachedKernel);

// ---- batched grid builds: one walk ensemble vs the serial per-trial loop ----
// The tuning-loop shape on the paper's a00512 plasma system: an 8-point
// (eps, delta) refinement batch clustered near the incumbent the optimiser
// converges to (chain counts 108..182, two truncation depths; the BO
// recommender's dedup distance of 1e-3 admits exactly this spacing).  The
// serial loop is the pre-batching status quo — one standalone build per
// trial sharing the walk kernel through a WalkKernelCache — so the pair
// ratio isolates the ensemble sharing, not kernel-rebuild savings.
// items/s = serial-equivalent transitions/s (summed per-trial truncated
// work); both rows report identical item counts by construction.

constexpr real_t kGridBenchAlpha = 0.5;

const std::vector<GridTrial>& grid_bench_trials() {
  static const std::vector<GridTrial> trials = {
      {0.05, 0.05},  {0.052, 0.0625}, {0.054, 0.05},  {0.056, 0.0625},
      {0.058, 0.05}, {0.06, 0.0625},  {0.062, 0.05},  {0.065, 0.0625}};
  return trials;
}

const CsrMatrix& grid_bench_matrix() {
  static const CsrMatrix a = plasma_a00512();
  return a;
}

void BM_SerialGridBuild(benchmark::State& state) {
  const CsrMatrix& a = grid_bench_matrix();
  WalkKernelCache cache;
  long long transitions = 0;
  for (auto _ : state) {
    for (const GridTrial& t : grid_bench_trials()) {
      McmcInverter inverter(a, {kGridBenchAlpha, t.eps, t.delta});
      inverter.set_kernel_cache(&cache);
      benchmark::DoNotOptimize(inverter.compute().nnz());
      transitions += inverter.info().total_transitions;
    }
  }
  state.SetItemsProcessed(transitions);
}
BENCHMARK(BM_SerialGridBuild)->Unit(benchmark::kMillisecond);

void BM_BatchedGridBuild(benchmark::State& state) {
  const CsrMatrix& a = grid_bench_matrix();
  WalkKernelCache cache;
  long long transitions = 0;
  for (auto _ : state) {
    const BatchedGridResult r = batched_grid_build(
        a, kGridBenchAlpha, grid_bench_trials(), {}, &cache);
    benchmark::DoNotOptimize(r.preconditioners.data());
    for (const McmcBuildInfo& info : r.info) {
      transitions += info.total_transitions;
    }
  }
  state.SetItemsProcessed(transitions);
}
BENCHMARK(BM_BatchedGridBuild)->Unit(benchmark::kMillisecond);

// ---- replicate-batched grid builds ------------------------------------------
// The variance-estimation shape of the tuning loop: the same 8-trial batch
// as the pair above, replicated 4x with distinct chain-stream seeds (the
// PerformanceMeasurer keying).  Three rows:
//
//   * BM_SerialReplicateGridBuild — the fully serial status quo in the
//     BM_SerialGridBuild convention: one standalone McmcInverter::compute()
//     per (trial, replicate), sharing the walk kernel through a cache.
//   * BM_PerReplicateGridBuild — the PR 3 middle point: one batched (eps,
//     delta) ensemble per replicate (what measure_grid_replicates did
//     before this PR).
//   * BM_ReplicateBatchedGridBuild — one interleaved ensemble for the whole
//     (trial, replicate) grid (replicate_batched_grid_build).
//
// The gated pair is batched-vs-serial: the whole CRN stack must collapse
// the 32-build grid by >= 2x.  Replicates share no random draws (their
// streams are keyed by distinct seeds), so against the PER-REPLICATE loop
// the interleaved build can only win by overlapping walk latency across
// lanes — roughly neutral on cache-resident systems like this one, growing
// with matrix size — and the second pair just guards against regression.
// items/s = serial-equivalent transitions/s; all rows report identical item
// counts by construction.

const std::vector<u64>& replicate_bench_seeds() {
  static const std::vector<u64> seeds = {
      mix64(20250922 + 0x9e3779b9 * 1), mix64(20250922 + 0x9e3779b9 * 2),
      mix64(20250922 + 0x9e3779b9 * 3), mix64(20250922 + 0x9e3779b9 * 4)};
  return seeds;
}

void BM_SerialReplicateGridBuild(benchmark::State& state) {
  const CsrMatrix& a = grid_bench_matrix();
  WalkKernelCache cache;
  long long transitions = 0;
  for (auto _ : state) {
    for (u64 seed : replicate_bench_seeds()) {
      McmcOptions opt;
      opt.seed = seed;
      for (const GridTrial& t : grid_bench_trials()) {
        McmcInverter inverter(a, {kGridBenchAlpha, t.eps, t.delta}, opt);
        inverter.set_kernel_cache(&cache);
        benchmark::DoNotOptimize(inverter.compute().nnz());
        transitions += inverter.info().total_transitions;
      }
    }
  }
  state.SetItemsProcessed(transitions);
}
BENCHMARK(BM_SerialReplicateGridBuild)->Unit(benchmark::kMillisecond);

void BM_PerReplicateGridBuild(benchmark::State& state) {
  const CsrMatrix& a = grid_bench_matrix();
  WalkKernelCache cache;
  long long transitions = 0;
  for (auto _ : state) {
    for (u64 seed : replicate_bench_seeds()) {
      McmcOptions opt;
      opt.seed = seed;
      const BatchedGridResult r = batched_grid_build(
          a, kGridBenchAlpha, grid_bench_trials(), opt, &cache);
      benchmark::DoNotOptimize(r.preconditioners.data());
      for (const McmcBuildInfo& info : r.info) {
        transitions += info.total_transitions;
      }
    }
  }
  state.SetItemsProcessed(transitions);
}
BENCHMARK(BM_PerReplicateGridBuild)->Unit(benchmark::kMillisecond);

void BM_ReplicateBatchedGridBuild(benchmark::State& state) {
  const CsrMatrix& a = grid_bench_matrix();
  WalkKernelCache cache;
  long long transitions = 0;
  for (auto _ : state) {
    const ReplicatedGridResult r = replicate_batched_grid_build(
        a, kGridBenchAlpha, grid_bench_trials(), replicate_bench_seeds(), {},
        &cache);
    benchmark::DoNotOptimize(r.replicates.data());
    for (const BatchedGridResult& rep : r.replicates) {
      for (const McmcBuildInfo& info : rep.info) {
        transitions += info.total_transitions;
      }
    }
  }
  state.SetItemsProcessed(transitions);
}
BENCHMARK(BM_ReplicateBatchedGridBuild)->Unit(benchmark::kMillisecond);

// ---- SIMD lane tier: compile-time lane specialisation A/B -------------------
// Eight replicate seeds put the interleaved ensemble exactly on the W = 8
// specialised lockstep engine; force_dynamic_lanes opts the B side back
// onto the dynamic-lane-count path.  The workload is the over-budget
// lattice regime the lane tier targets: a 2-D Laplace walk reaches O(L^2)
// states against a fixed visit budget, and the tight eps (1/16) drives
// chains_for_eps to ~117 chains per row, so nearly all time is the
// per-transition tail — RNG draw, alias lookup, weight update, stop rule —
// not emission.  With a single (delta, eps) trial per ensemble the live
// template is one unit wide, which dispatches the register-resident
// single-unit engine: the stop rule's delta/cutoff and the accumulator
// pointers hoist out of the transition loop, the walk state (RNG words,
// position, weight, step count) lives in registers instead of
// memory-resident `Lane` structs, and draws/alias lookups batch across the
// W lanes.  The two builds are bit-identical by the conformance suite, so
// items/s (serial-equivalent transitions/s) match by construction and the
// gated ratio isolates the lane tier itself.

const CsrMatrix& lane_bench_matrix() {
  static const CsrMatrix a = laplace_2d(64);
  return a;
}

const std::vector<u64>& lane_bench_seeds() {
  static const std::vector<u64> seeds = [] {
    std::vector<u64> s;
    for (u64 i = 1; i <= 8; ++i) {
      s.push_back(mix64(20250922 + 0x9e3779b9 * i));
    }
    return s;
  }();
  return seeds;
}

const std::vector<GridTrial>& lane_bench_trials() {
  static const std::vector<GridTrial> trials = {{0.0625, 0.0625}};
  return trials;
}

void lane_bench_run(benchmark::State& state, bool force_dynamic) {
  const CsrMatrix& a = lane_bench_matrix();
  WalkKernelCache cache;
  McmcOptions opt;
  opt.force_dynamic_lanes = force_dynamic;
  long long transitions = 0;
  for (auto _ : state) {
    const ReplicatedGridResult r = replicate_batched_grid_build(
        a, kGridBenchAlpha, lane_bench_trials(), lane_bench_seeds(), opt,
        &cache);
    benchmark::DoNotOptimize(r.replicates.data());
    for (const BatchedGridResult& rep : r.replicates) {
      for (const McmcBuildInfo& info : rep.info) {
        transitions += info.total_transitions;
      }
    }
  }
  state.SetItemsProcessed(transitions);
}

void BM_LaneSpecGridBuild(benchmark::State& state) {
  lane_bench_run(state, /*force_dynamic=*/false);
}
BENCHMARK(BM_LaneSpecGridBuild)->Unit(benchmark::kMillisecond);

void BM_DynamicLaneGridBuild(benchmark::State& state) {
  lane_bench_run(state, /*force_dynamic=*/true);
}
BENCHMARK(BM_DynamicLaneGridBuild)->Unit(benchmark::kMillisecond);

// ---- multi-alpha grid builds: shared successor draws across alphas ----------
// The hpo::tune_mcmc_params shape: one 4-trial (eps, delta) batch evaluated
// at two alphas whose perturbed diagonals differ by a power of two, so both
// samplers' draw decisions round identically and the runtime checks enable
// successor sharing — one RNG draw per step serves both alphas, each with
// its own weight stream.  Unlike replicate interleaving this removes work
// outright.  Args: /0 = alias fallback shape (one ensemble per alpha),
// /1 = alias shared, /2 = inverse-CDF fallback shape, /3 = inverse-CDF
// shared (the scale-invariant normalised-cum_abs sharing).  CI gates the
// /1-vs-/0 and /3-vs-/2 pairs (see bench/README.md).

void BM_MultiAlphaGridBuild(benchmark::State& state) {
  const CsrMatrix& a = grid_bench_matrix();
  const std::vector<GridTrial> trials(grid_bench_trials().begin(),
                                      grid_bench_trials().begin() + 4);
  const std::vector<AlphaGroup> groups = {{1.0, {}, trials},
                                          {3.0, {}, trials}};
  const std::vector<u64> seeds = {replicate_bench_seeds()[0],
                                  replicate_bench_seeds()[1]};
  WalkKernelCache cache;
  const bool shared = (state.range(0) & 1) == 1;
  McmcOptions opt;
  if (state.range(0) >= 2) opt.sampling = SamplingMethod::kInverseCdf;
  long long transitions = 0;
  for (auto _ : state) {
    MultiAlphaGridResult r;
    if (shared) {
      r = multi_alpha_grid_build(a, groups, seeds, opt, &cache);
    } else {
      // Fallback shape for comparison: one ensemble per alpha.
      for (const AlphaGroup& g : groups) {
        r.groups.push_back(replicate_batched_grid_build(a, g.alpha, g.trials,
                                                        seeds, opt, &cache));
      }
    }
    benchmark::DoNotOptimize(r.groups.data());
    for (const ReplicatedGridResult& rep : r.groups) {
      for (const BatchedGridResult& b : rep.replicates) {
        for (const McmcBuildInfo& info : b.info) {
          transitions += info.total_transitions;
        }
      }
    }
  }
  state.SetItemsProcessed(transitions);
}
BENCHMARK(BM_MultiAlphaGridBuild)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

// ---- row emission: the RowEmitter engine vs the reference emitter -----------
// The accumulator -> CSR-row pass every builder pays per (row, trial,
// replicate, alpha) — after the batched builds collapsed the walk work this
// is the dominant fixed cost of a grid build.  Each row measures the same
// synthetic walk-accumulator emission two ways, selected by the benchmark
// arg: /0 = emit_row_reference (the pre-engine path: stage every candidate,
// nth_element cut, compaction), /1 = RowEmitter (touched-count fast path +
// threshold-tracked top-budget cut).  Both sides re-fill the accumulator
// from a template per iteration (identical overhead), produce bit-identical
// rows, and report items/s = touched states streamed per second.

/// One synthetic emission workload: `touched_count` states with walk-like
/// geometrically decaying magnitudes and mixed signs, against `budget`.
struct EmitWorkload {
  std::vector<index_t> touched;
  std::vector<real_t> accum;    ///< dense accumulator, zeroed by each emit
  std::vector<real_t> restore;  ///< template the loop re-fills accum from
  std::vector<real_t> inv_diag;
  index_t row = 0;
  index_t budget = 1;
  real_t inv_chains = 1.0 / 116.0;  // the eps = 1/16 chain count
};

EmitWorkload make_emit_workload(index_t n, index_t touched_count,
                                index_t budget) {
  EmitWorkload w;
  w.budget = budget;
  w.accum.assign(static_cast<std::size_t>(n), 0.0);
  w.restore.assign(static_cast<std::size_t>(n), 0.0);
  w.inv_diag.assign(static_cast<std::size_t>(n), 0.2);
  Xoshiro256 rng = make_stream(1234, 1);
  const index_t stride = n / touched_count;
  for (index_t t = 0; t < touched_count; ++t) {
    const index_t j = t * stride;
    w.touched.push_back(j);
    // Chain sums decay geometrically in walk depth; duplicate magnitudes
    // (tie stress at the cut) arise naturally from equal depths.
    const real_t depth = std::floor(uniform01(rng) * 12.0);
    const real_t sign = (rng() & 1u) != 0 ? 1.0 : -1.0;
    w.restore[j] = sign * std::pow(0.55, depth) * (1.0 + uniform01(rng));
  }
  w.row = w.touched[static_cast<std::size_t>(touched_count / 2)];
  return w;
}

void emit_row_bench(benchmark::State& state, index_t n, index_t touched_count,
                    index_t budget) {
  EmitWorkload w = make_emit_workload(n, touched_count, budget);
  const bool engine = state.range(0) == 1;
  RowArena arena;
  RowEmitter emitter;
  std::vector<real_t> scratch;
  for (auto _ : state) {
    arena.cols.clear();
    arena.vals.clear();
    for (index_t j : w.touched) w.accum[j] = w.restore[j];
    const RowSlice s =
        engine ? emitter.emit(arena, 0, w.accum.data(), w.touched, w.row,
                              w.inv_chains, w.inv_diag, 1e-9, w.budget)
               : emit_row_reference(arena, 0, w.accum.data(), w.touched,
                                    w.row, w.inv_chains, w.inv_diag, 1e-9,
                                    w.budget, scratch);
    benchmark::DoNotOptimize(s.count);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<index_t>(w.touched.size()));
}

void BM_EmitRowDense(benchmark::State& state) {
  // The over-budget lattice shape: a 2-D Laplace walk touches O(L^2) states
  // (thousands at the eps = delta = 1/16 cutoff) against a budget of
  // 2 * nnz/n ~ 10 — the workload the threshold-tracked cut targets.
  emit_row_bench(state, 4096, 3000, 10);
}
BENCHMARK(BM_EmitRowDense)->Arg(0)->Arg(1);

void BM_EmitRowSparse(benchmark::State& state) {
  // Mildly over-budget (the a00512 plasma shape: reach ~2.5x the budget).
  emit_row_bench(state, 4096, 96, 38);
}
BENCHMARK(BM_EmitRowSparse)->Arg(0)->Arg(1);

void BM_EmitRowUnderBudget(benchmark::State& state) {
  // Touched count below budget: both paths reduce to the bare
  // threshold-filter loop (the engine skips all tracking).
  emit_row_bench(state, 4096, 24, 38);
}
BENCHMARK(BM_EmitRowUnderBudget)->Arg(0)->Arg(1);

void BM_RegenerativeBuild(benchmark::State& state) {
  const CsrMatrix a = laplace_2d(64);
  for (auto _ : state) {
    RegenerativeInverter inverter(a,
                                  {1.0, static_cast<index_t>(state.range(0))});
    benchmark::DoNotOptimize(inverter.compute().nnz());
  }
}
BENCHMARK(BM_RegenerativeBuild)->Arg(32)->Arg(128);

void BM_WalkThroughput(benchmark::State& state) {
  // Transitions per second of the sampler at a fixed configuration.
  const CsrMatrix a = plasma_a00512();
  index_t transitions = 0;
  for (auto _ : state) {
    McmcInverter inverter(a, {1.0, 0.125, 0.03125});
    benchmark::DoNotOptimize(inverter.compute().nnz());
    transitions += inverter.info().total_transitions;
  }
  state.SetItemsProcessed(transitions);
}
BENCHMARK(BM_WalkThroughput);

void BM_GmresSolve(benchmark::State& state) {
  const CsrMatrix a = laplace_2d(48);
  std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  IdentityPreconditioner id;
  SolveOptions opt;
  opt.restart = 250;
  for (auto _ : state) {
    std::vector<real_t> x;
    benchmark::DoNotOptimize(solve_gmres(a, b, id, x, opt).iterations);
  }
}
BENCHMARK(BM_GmresSolve);

// ---- solve orchestrator: healthy path vs the degraded fallback path ----
// Three rows sharing one matrix and request shape so the pair ratios isolate
// the orchestration cost:
//   * BM_DirectMcmcSolve     — the pre-orchestrator status quo: build the
//     MCMC preconditioner by hand, call the solver, no lifecycle management;
//   * BM_OrchestratorHealthy — the same work through SolveOrchestrator's
//     ladder (the first rung converges), measuring the request-lifecycle
//     overhead: token plumbing, stage bookkeeping, the report;
//   * BM_OrchestratorDegraded — an injected MCMC build failure per request,
//     measuring a full fallback hop (failed stage + Jacobi rescue).
// Orchestrators and caches are constructed inside the timed loop so the
// kernel cache cannot bias the healthy-vs-direct comparison.

constexpr real_t kOrchBenchTol = 1e-8;

const CsrMatrix& orch_bench_matrix() {
  static const CsrMatrix a = laplace_2d(24);
  return a;
}

SolveRequest orch_bench_request() {
  SolveRequest req;
  req.tolerance = kOrchBenchTol;
  req.mcmc_params = {1.0, 0.25, 0.125};
  return req;
}

void BM_DirectMcmcSolve(benchmark::State& state) {
  const CsrMatrix& a = orch_bench_matrix();
  const std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  const SolveRequest req = orch_bench_request();
  SolveOptions opt;
  opt.tolerance = req.tolerance;
  for (auto _ : state) {
    const auto p =
        McmcInverter::build_preconditioner(a, req.mcmc_params);
    std::vector<real_t> x;
    benchmark::DoNotOptimize(
        solve_gmres(a, b, *p, x, opt).iterations);
  }
}
BENCHMARK(BM_DirectMcmcSolve)->Unit(benchmark::kMillisecond);

void BM_OrchestratorHealthy(benchmark::State& state) {
  const CsrMatrix& a = orch_bench_matrix();
  const std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  const SolveRequest req = orch_bench_request();
  for (auto _ : state) {
    SolveOrchestrator orch(a);
    std::vector<real_t> x;
    benchmark::DoNotOptimize(orch.solve(b, x, req).iterations);
  }
}
BENCHMARK(BM_OrchestratorHealthy)->Unit(benchmark::kMillisecond);

void BM_OrchestratorDegraded(benchmark::State& state) {
  const CsrMatrix& a = orch_bench_matrix();
  const std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  const SolveRequest req = orch_bench_request();
  for (auto _ : state) {
    FaultInjector faults;
    faults.fail_builds(SolveStage::kMcmc, 1);
    SolveOrchestrator orch(a, &faults);
    std::vector<real_t> x;
    benchmark::DoNotOptimize(orch.solve(b, x, req).iterations);
  }
}
BENCHMARK(BM_OrchestratorDegraded)->Unit(benchmark::kMillisecond);

void BM_Ilu0Factorise(benchmark::State& state) {
  const CsrMatrix a = laplace_2d(64);
  for (auto _ : state) {
    Ilu0Preconditioner ilu(a);
    benchmark::DoNotOptimize(&ilu);
  }
}
BENCHMARK(BM_Ilu0Factorise);

void BM_FeatureExtraction(benchmark::State& state) {
  const CsrMatrix a = plasma_a00512();
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_features(a).to_vector().data());
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_GnnForward(benchmark::State& state) {
  const gnn::Graph g = gnn::Graph::from_csr(laplace_2d(32));
  gnn::GnnConfig config;
  config.hidden = static_cast<index_t>(state.range(0));
  gnn::GnnStack stack(config, 1, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.forward(g, false).data().data());
  }
}
BENCHMARK(BM_GnnForward)->Arg(16)->Arg(64);

void BM_GnnBackward(benchmark::State& state) {
  const gnn::Graph g = gnn::Graph::from_csr(laplace_2d(32));
  gnn::GnnConfig config;
  config.hidden = 32;
  gnn::GnnStack stack(config, 1, 7);
  nn::Tensor grad(1, 32, 1.0);
  for (auto _ : state) {
    stack.forward(g, true);
    stack.backward(g, grad);
  }
}
BENCHMARK(BM_GnnBackward);

void BM_ExpectedImprovement(benchmark::State& state) {
  const EiContext ctx{0.8, 0.05};
  real_t mu = 0.7;
  for (auto _ : state) {
    mu += 1e-9;
    benchmark::DoNotOptimize(expected_improvement(mu, 0.3, ctx));
  }
}
BENCHMARK(BM_ExpectedImprovement);

void BM_LbfgsbRosenbrock(benchmark::State& state) {
  Bounds bounds{{-2.0, -2.0}, {2.0, 2.0}};
  auto f = [](const std::vector<real_t>& x, std::vector<real_t>& g) {
    const real_t a = 1.0 - x[0];
    const real_t b = x[1] - x[0] * x[0];
    g = {-2.0 * a - 400.0 * x[0] * b, 200.0 * b};
    return a * a + 100.0 * b * b;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimize_lbfgsb(f, {-1.2, 1.0}, bounds).value);
  }
}
BENCHMARK(BM_LbfgsbRosenbrock);

}  // namespace

#define MCMI_BENCH_DEFAULT_JSON "BENCH_micro_kernels.json"
#include "json_main.hpp"
