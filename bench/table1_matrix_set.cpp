// Regenerates Table 1 of the paper: the matrix study set with dimension,
// symmetricity, condition number kappa(A) and fill phi(A).
//
// Paper values for reference (full-scale sizes):
//   2DFDLaplace_16    225    Yes  1.0e2   0.042
//   2DFDLaplace_32    961    Yes  4.1e2   0.001 (sic; 5-pt stencil ~0.005)
//   2DFDLaplace_64    3969   Yes  1.7e3   0.0024
//   2DFDLaplace_128   16129  Yes  6.6e3   0.0006
//   nonsym_r3_a11     20930  No   1.9e4   0.0044
//   a00512            512    No   1.9e3   0.059
//   a08192            8192   No   3.2e5   0.0007
//   unsteady_adv_diff_order1_0001  225  No  4.1e6  0.646
//   unsteady_adv_diff_order2_0001  225  No  6.6e6  0.646
//   PDD_RealSparse_N64/128/256     64..256  No  1.3e1/5.0/7.0  0.1
//
// Large members are generated at reduced size unless MCMI_FULL=1.

#include <cstdio>
#include <iostream>

#include "core/env.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"
#include "features/matrix_features.hpp"
#include "gen/matrix_set.hpp"

int main() {
  using namespace mcmi;
  const bool full = full_scale();
  std::printf("== Table 1: matrix set used for this study (%s scale) ==\n",
              full ? "paper" : "reduced");

  TextTable table({"Matrix", "Dimension", "Symmetricity", "kappa(A)",
                   "phi(A)"});
  WallTimer timer;
  for (const std::string& name : paper_matrix_names()) {
    const NamedMatrix m = make_matrix(name, full);
    // Exact SVD below 600 rows, iterative power/inverse-power above.
    const real_t kappa = estimate_condition_number(m.matrix, 600);
    table.add_row({
        name,
        TextTable::fmt(m.matrix.rows()),
        m.matrix.is_symmetric() ? "Yes" : "No",
        TextTable::sci(kappa, 1),
        TextTable::fmt(m.matrix.fill(), 4),
    });
  }
  table.print(std::cout);
  table.write_csv("table1_matrix_set.csv");
  std::printf("\n[table1] %.1f s; CSV written to table1_matrix_set.csv\n",
              timer.seconds());
  return 0;
}
