// Ablations of the MCMC matrix-inversion design choices called out in
// DESIGN.md:
//   (a) chain count (eps) vs estimator error — the 1/sqrt(N) law;
//   (b) walk cutoff (delta) vs estimator error — the truncation bias;
//   (c) filling-factor cap vs preconditioner quality;
//   (d) classic (eps, delta) sampler vs the regenerative single-budget
//       variant at matched transition cost (the paper's cited extension);
//   (e) rank-partition invariance: 1 vs 2 vs 4 rank-like blocks must give
//       bit-identical preconditioners (the MPI-substitution argument).

#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/table.hpp"
#include "dense/lu.hpp"
#include "dense/matrix.hpp"
#include "gen/matrix_set.hpp"
#include "gen/random_sparse.hpp"
#include "krylov/solver.hpp"
#include "mcmc/inverter.hpp"
#include "mcmc/regenerative.hpp"

namespace {

using namespace mcmi;

real_t inversion_error(const CsrMatrix& a, const CsrMatrix& p, real_t alpha) {
  std::vector<real_t> d = a.diag();
  for (real_t& v : d) v = alpha * std::abs(v);
  const DenseMatrix exact =
      dense_inverse(DenseMatrix::from_csr(a.add_diagonal(1.0, d)));
  real_t num = 0.0, den = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      const real_t e = p.at(i, j) - exact(i, j);
      num += e * e;
      den += exact(i, j) * exact(i, j);
    }
  }
  return std::sqrt(num / den);
}

}  // namespace

int main() {
  using namespace mcmi;
  const CsrMatrix a = random_diag_dominant(48, 5, 2.0, 77);
  McmcOptions uncapped;
  uncapped.filling_factor = 1000.0;
  uncapped.truncation_threshold = 0.0;

  std::printf("== MCMC ablations (n=%lld reference matrix) ==\n",
              static_cast<long long>(a.rows()));

  // (a) eps sweep at fixed small delta.
  {
    TextTable t({"eps", "chains/row", "rel. inversion error",
                 "transitions"});
    for (real_t eps : {1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125}) {
      McmcInverter inv(a, {0.5, eps, 0.001}, uncapped);
      const CsrMatrix p = inv.compute();
      t.add_row({TextTable::fmt(eps, 5),
                 TextTable::fmt(inv.info().chains_per_row),
                 TextTable::fmt(inversion_error(a, p, 0.5), 5),
                 TextTable::fmt(inv.info().total_transitions)});
    }
    std::printf("\n-- (a) stochastic error eps -> chain count (expect "
                "~1/sqrt(N) error decay) --\n");
    t.print(std::cout);
  }

  // (b) delta sweep at fixed eps.
  {
    TextTable t({"delta", "walk cutoff", "rel. inversion error",
                 "transitions"});
    for (real_t delta : {1.0, 0.5, 0.25, 0.125, 0.0625, 0.001}) {
      McmcInverter inv(a, {0.5, 0.0625, delta}, uncapped);
      const CsrMatrix p = inv.compute();
      t.add_row({TextTable::fmt(delta, 4),
                 TextTable::fmt(inv.info().walk_cutoff),
                 TextTable::fmt(inversion_error(a, p, 0.5), 5),
                 TextTable::fmt(inv.info().total_transitions)});
    }
    std::printf("\n-- (b) truncation error delta -> walk length (expect "
                "bias shrinking with delta) --\n");
    t.print(std::cout);
  }

  // (c) filling-factor cap vs preconditioner quality on a Table 1 member.
  {
    const NamedMatrix nm = make_matrix("a00512");
    std::vector<real_t> b(nm.matrix.rows(), 1.0);
    SolveOptions solve;
    solve.restart = 250;
    solve.max_iterations = 2000;
    IdentityPreconditioner id;
    std::vector<real_t> x;
    const index_t base = solve_gmres(nm.matrix, b, id, x, solve).iterations;
    TextTable t({"filling factor", "nnz(P)/nnz(A)", "gmres steps",
                 "y = steps ratio"});
    for (real_t factor : {0.5, 1.0, 2.0, 4.0}) {
      McmcOptions opt;
      opt.filling_factor = factor;
      McmcInverter inv(nm.matrix, {1.0, 0.0625, 0.0625}, opt);
      const SparseApproximateInverse p(inv.compute(), "mcmcmi");
      const SolveResult res = solve_gmres(nm.matrix, b, p, x, solve);
      t.add_row({TextTable::fmt(factor, 2),
                 TextTable::fmt(static_cast<real_t>(p.matrix().nnz()) /
                                    static_cast<real_t>(nm.matrix.nnz()),
                                3),
                 TextTable::fmt(res.iterations),
                 TextTable::fmt(static_cast<real_t>(res.iterations) /
                                    static_cast<real_t>(base),
                                4)});
    }
    std::printf("\n-- (c) filling factor on a00512 (baseline %lld steps; "
                "paper fixes 2x) --\n",
                static_cast<long long>(base));
    t.print(std::cout);
  }

  // (d) classic vs regenerative at matched transition budgets.
  {
    TextTable t({"scheme", "parameters", "transitions",
                 "rel. inversion error"});
    for (real_t eps : {0.25, 0.125, 0.0625}) {
      McmcInverter classic(a, {0.5, eps, 0.01}, uncapped);
      const CsrMatrix pc = classic.compute();
      const index_t spent = classic.info().total_transitions;
      const index_t budget =
          std::max<index_t>(1, spent / a.rows());
      RegenerativeOptions ropt;
      ropt.filling_factor = 1000.0;
      ropt.truncation_threshold = 0.0;
      RegenerativeInverter regen(a, {0.5, budget}, ropt);
      const CsrMatrix pr = regen.compute();
      t.add_row({"classic",
                 "eps=" + TextTable::fmt(eps, 4) + ", delta=0.01",
                 TextTable::fmt(spent),
                 TextTable::fmt(inversion_error(a, pc, 0.5), 5)});
      t.add_row({"regenerative",
                 "budget=" + TextTable::fmt(budget) + "/row",
                 TextTable::fmt(regen.info().total_transitions),
                 TextTable::fmt(inversion_error(a, pr, 0.5), 5)});
    }
    std::printf("\n-- (d) classic Ulam-von Neumann vs regenerative variant "
                "at matched cost --\n");
    t.print(std::cout);
  }

  // (e) rank-partition determinism.
  {
    TextTable t({"ranks", "identical to 1-rank result"});
    McmcOptions base_opt;
    base_opt.ranks = 1;
    const CsrMatrix reference =
        McmcInverter(a, {1.0, 0.25, 0.125}, base_opt).compute();
    for (index_t ranks : {2, 4}) {
      McmcOptions opt;
      opt.ranks = ranks;
      const CsrMatrix p = McmcInverter(a, {1.0, 0.25, 0.125}, opt).compute();
      const bool same = p.values() == reference.values() &&
                        p.col_idx() == reference.col_idx();
      t.add_row({TextTable::fmt(ranks), same ? "yes" : "NO"});
    }
    std::printf("\n-- (e) rank-like chain partition (MPI substitution) is "
                "result-invariant --\n");
    t.print(std::cout);
  }
  return 0;
}
