// Regenerates Figure 1: calibration curves comparing predicted and observed
// coverage probabilities of the Pre-BO and BO-enhanced surrogates on the
// unseen test matrix, with Wilson 95% bands (eq. 5, 6).
//
// Paper shape: the Pre-BO model under-covers (curve below the diagonal);
// after one BO round the BO-enhanced model moves markedly closer to the
// diagonal.

#include <cstdio>
#include <iostream>

#include "core/table.hpp"
#include "experiment_cache.hpp"
#include "stats/calibration.hpp"

int main() {
  using namespace mcmi;
  const ExperimentResults r = bench::run_or_load_experiment("fig1");

  const auto curve_pre = calibration_curve(r.calibration_pre);
  const auto curve_post = calibration_curve(r.calibration_post);

  std::printf("== Figure 1: calibration of predicted coverage (%zu "
              "observations on the unseen matrix) ==\n",
              r.calibration_pre.size());
  TextTable table({"tau (expected)", "Pre-BO observed", "Pre-BO Wilson95",
                   "BO-enhanced observed", "BO-enh Wilson95"});
  for (std::size_t i = 0; i < curve_pre.size(); ++i) {
    const CoveragePoint& a = curve_pre[i];
    const CoveragePoint& b = curve_post[i];
    table.add_row({
        TextTable::fmt(a.expected, 2),
        TextTable::fmt(a.observed, 3),
        "[" + TextTable::fmt(a.wilson.low, 3) + ", " +
            TextTable::fmt(a.wilson.high, 3) + "]",
        TextTable::fmt(b.observed, 3),
        "[" + TextTable::fmt(b.wilson.low, 3) + ", " +
            TextTable::fmt(b.wilson.high, 3) + "]",
    });
  }
  table.print(std::cout);
  table.write_csv("fig1_calibration.csv");

  const real_t err_pre = calibration_error(curve_pre);
  const real_t err_post = calibration_error(curve_post);
  std::printf(
      "\nmean |observed - expected|: Pre-BO %.3f vs BO-enhanced %.3f (%s)\n",
      err_pre, err_post,
      err_post < err_pre ? "BO round improves calibration, as in the paper"
                         : "calibration did not improve at this scale");
  std::printf("[fig1] CSV written to fig1_calibration.csv\n");
  return 0;
}
